"""Correction-factor selection policies.

A policy decides, per module, which CF(s) to try and at what cost in tool
runs.  The paper compares: a constant CF high enough for every module
(1.68), a constant low starting point with upward search (0.9), the
ground-truth minimal CF, and the learned estimator (in
:mod:`repro.estimator.strategy`, which implements this same interface).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.device.grid import DeviceGrid
from repro.netlist.stats import NetlistStats
from repro.place.packer import PackResult, pack
from repro.place.quick import ShapeReport
from repro.pblock.cf_search import DEFAULT_START, InfeasibleModuleError, minimal_cf
from repro.pblock.generator import PBlockGenerationError, build_pblock
from repro.pblock.pblock import PBlock
from repro.utils.validation import check_positive

__all__ = [
    "CFOutcome",
    "CFPolicy",
    "FixedCF",
    "SweepCF",
    "MinimalCFPolicy",
    "FlowInfeasibleError",
]


class FlowInfeasibleError(RuntimeError):
    """A module could not be implemented under the policy.

    Attributes
    ----------
    attempted_cfs:
        Every CF the policy tried before giving up (diagnostic payload
        for :class:`~repro.flow.preimpl.FlowInfeasibleReport`).
    n_runs:
        Tool runs spent on the failed attempts; defaults to
        ``len(attempted_cfs)``.
    """

    def __init__(
        self,
        message: str,
        *,
        attempted_cfs: tuple[float, ...] = (),
        n_runs: int | None = None,
    ) -> None:
        super().__init__(message)
        self.attempted_cfs = tuple(attempted_cfs)
        self.n_runs = len(self.attempted_cfs) if n_runs is None else n_runs


def _swept_cfs(start: float, step: float, max_cf: float) -> tuple[float, ...]:
    """The CF ladder an upward sweep visits (for failure diagnostics)."""
    cfs: list[float] = []
    cf = start
    while cf <= max_cf + 1e-9:
        cfs.append(round(cf, 10))
        cf = round(cf + step, 10)
    return tuple(cfs)


@dataclass(frozen=True)
class CFOutcome:
    """Result of CF selection for one module.

    Attributes
    ----------
    cf:
        The CF the module was finally implemented with.
    n_runs:
        Place-and-route attempts spent (the paper's "tool runs").
    pblock, result:
        The accepted PBlock and packing result.
    predicted_cf:
        The policy's initial guess (equals ``cf`` for constant policies).
    """

    cf: float
    n_runs: int
    pblock: PBlock
    result: PackResult
    predicted_cf: float


class CFPolicy(abc.ABC):
    """Interface: pick a CF for a module on a device."""

    @abc.abstractmethod
    def choose(
        self, stats: NetlistStats, report: ShapeReport, grid: DeviceGrid
    ) -> CFOutcome:
        """Implement the module; raises :class:`FlowInfeasibleError` on failure."""

    def fingerprint(self) -> str:
        """Stable identity of the policy and its parameters.

        The pre-implementation cache keys entries on this string, so two
        policies with the same fingerprint must produce identical
        :class:`CFOutcome` objects for any module.  The default renders
        the class name plus all dataclass init fields; policies with
        trained state (see :class:`~repro.estimator.strategy.EstimatedCF`)
        override it to hash their weights.
        """
        import dataclasses

        name = type(self).__qualname__
        if dataclasses.is_dataclass(self):
            parts = ",".join(
                f"{f.name}={getattr(self, f.name)!r}"
                for f in dataclasses.fields(self)
                if f.init
            )
            return f"{name}({parts})"
        return name

    @staticmethod
    def _attempt(
        stats: NetlistStats, report: ShapeReport, cf: float, grid: DeviceGrid
    ) -> tuple[PBlock | None, PackResult]:
        try:
            pb = build_pblock(stats, report, cf, grid)
        except PBlockGenerationError:
            return None, PackResult(False, reason="no_pblock")
        return pb, pack(stats, pb)


@dataclass
class FixedCF(CFPolicy):
    """A single constant CF (the paper's CF = 1.5 / 1.68 setups)."""

    cf: float

    def __post_init__(self) -> None:
        check_positive(self.cf, "cf")

    def choose(
        self, stats: NetlistStats, report: ShapeReport, grid: DeviceGrid
    ) -> CFOutcome:
        pb, res = self._attempt(stats, report, self.cf, grid)
        if pb is None or not res.feasible:
            raise FlowInfeasibleError(
                f"{stats.name}: infeasible at constant cf={self.cf} ({res.reason})",
                attempted_cfs=(self.cf,),
            )
        return CFOutcome(
            cf=self.cf, n_runs=1, pblock=pb, result=res, predicted_cf=self.cf
        )


@dataclass
class SweepCF(CFPolicy):
    """Start low and sweep upward (the paper's constant CF = 0.9 baseline).

    Every attempt is a tool run; this is the expensive-but-compact
    reference the estimator is measured against (§VIII: 1.8x more runs).
    """

    start: float = 0.9
    step: float = 0.02
    max_cf: float = 2.5

    def choose(
        self, stats: NetlistStats, report: ShapeReport, grid: DeviceGrid
    ) -> CFOutcome:
        try:
            found = minimal_cf(
                stats,
                grid,
                start=self.start,
                step=self.step,
                max_cf=self.max_cf,
                report=report,
            )
        except InfeasibleModuleError as exc:
            raise FlowInfeasibleError(
                str(exc),
                attempted_cfs=_swept_cfs(self.start, self.step, self.max_cf),
            ) from exc
        return CFOutcome(
            cf=found.cf,
            n_runs=found.n_runs,
            pblock=found.pblock,
            result=found.result,
            predicted_cf=self.start,
        )


@dataclass
class MinimalCFPolicy(CFPolicy):
    """Ground-truth minimal CF (oracle; used for Fig. 4/5c).

    Searches downward too, so BRAM-driven modules reach their true
    minimum; the run count reflects the full sweep.
    """

    step: float = 0.02
    max_cf: float = 2.5

    def choose(
        self, stats: NetlistStats, report: ShapeReport, grid: DeviceGrid
    ) -> CFOutcome:
        try:
            found = minimal_cf(
                stats,
                grid,
                step=self.step,
                max_cf=self.max_cf,
                search_down=True,
                report=report,
            )
        except InfeasibleModuleError as exc:
            raise FlowInfeasibleError(
                str(exc),
                attempted_cfs=_swept_cfs(DEFAULT_START, self.step, self.max_cf),
            ) from exc
        return CFOutcome(
            cf=found.cf,
            n_runs=found.n_runs,
            pblock=found.pblock,
            result=found.result,
            predicted_cf=found.cf,
        )
