"""Flat whole-device flow (the paper's "AMD EDA tool" baseline).

Implements the entire block design as one netlist on the full device.
Because a global placer optimizes across module boundaries, each instance
gets its own placement: per-instance slice usage varies slightly (Table I
footnote: ``mvau_18`` has four instances using 30/34/32/29 slices), and
under area pressure the flat flow packs to the brink — the paper's design
lands at 99.98% utilization on the xc7z020.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.device.grid import DeviceGrid
from repro.flow.blockdesign import BlockDesign
from repro.netlist.stats import NetlistStats, compute_stats
from repro.place.packer import slice_demand
from repro.synth.mapper import opt_design, synthesize
from repro.utils.rng import module_noise

__all__ = ["MonolithicResult", "monolithic_flow"]

#: Flat-flow overhead over the ideal demand when the device has slack.
_FLAT_OVERHEAD = 0.10
#: Residual overhead of routing the whole design at once, even when the
#: placer is forced to optimize area (paper: the flat flow still uses more
#: slices per module than the tightest PBlock, Table I).
_FLAT_RESIDUAL = 0.035
#: Per-instance placement variation of the global placer (skewed upward:
#: the flat flow rarely beats a dedicated tightly-constrained placement).
_JITTER_LO = -0.03
_JITTER_HI = 0.08


@dataclass(frozen=True)
class MonolithicResult:
    """Result of the flat flow.

    Attributes
    ----------
    per_instance_slices:
        Slices used by each instance.
    total_slices:
        Sum over instances.
    utilization:
        ``total_slices / device slices``.
    placed:
        Whether the design fits the device at all.
    """

    per_instance_slices: dict[str, int]
    total_slices: int
    utilization: float
    placed: bool

    def module_slices(self, design: BlockDesign, module: str) -> list[int]:
        """Per-instance slice usage of one module (Table I's AMD column)."""
        return [
            self.per_instance_slices[i.name] for i in design.instances_of(module)
        ]


def monolithic_flow(design: BlockDesign, grid: DeviceGrid) -> MonolithicResult:
    """Run the flat flow for ``design`` on ``grid``.

    The model: every instance needs its module's post-fragmentation slice
    demand; a global placer adds a small overhead when the device has
    slack but squeezes toward the ideal demand as utilization approaches
    1 (the paper notes the AMD tool is "forced to optimize area" at
    99.98%).  Per-instance jitter is deterministic in the instance name.
    """
    design.validate()
    stats_by_module: dict[str, NetlistStats] = {
        name: compute_stats(opt_design(synthesize(mod)))
        for name, mod in design.modules.items()
    }
    demands = {
        name: slice_demand(stats) for name, stats in stats_by_module.items()
    }

    device_slices = grid.device_caps().slices
    ideal_total = sum(demands[i.module] for i in design.instances)
    # Area pressure: scale the flat-flow overhead down as the device fills.
    pressure = min(1.0, ideal_total / device_slices)
    overhead = _FLAT_OVERHEAD * (1.0 - pressure) + _FLAT_RESIDUAL

    per_instance: dict[str, int] = {}
    for inst in design.instances:
        jitter = module_noise(inst.name, "monolithic", _JITTER_LO, _JITTER_HI)
        used = demands[inst.module] * (1.0 + overhead + jitter)
        per_instance[inst.name] = max(1, math.ceil(used))

    total = sum(per_instance.values())
    return MonolithicResult(
        per_instance_slices=per_instance,
        total_slices=total,
        utilization=total / device_slices,
        placed=total <= device_slices,
    )
