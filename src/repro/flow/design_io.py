"""Block-design serialization (JSON).

Lets a partitioned design (e.g. one produced by an external FINN-style
frontend, or the calibrated cnvW1A1) be saved once and compiled many
times — including from the CLI — without re-running construction.
RTL constructs are rebuilt through a registry, so loading executes no
code from the file.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any

from repro.flow.blockdesign import BlockDesign
from repro.rtlgen import constructs as _constructs
from repro.rtlgen.base import RTLModule
from repro.utils.serialization import dump_json, load_json

__all__ = ["design_to_dict", "design_from_dict", "save_design", "load_design"]

#: Constructs eligible for (de)serialization, by class name.
_CONSTRUCT_TYPES: dict[str, type] = {
    name: getattr(_constructs, name)
    for name in _constructs.__all__
    if name != "Construct"
}


def _construct_to_dict(c: Any) -> dict[str, Any]:
    return {
        "type": type(c).__name__,
        "params": dataclasses.asdict(c),
    }


def _construct_from_dict(data: dict[str, Any]) -> Any:
    try:
        cls = _CONSTRUCT_TYPES[data["type"]]
    except KeyError:
        raise ValueError(f"unknown construct type {data.get('type')!r}") from None
    return cls(**data["params"])


def _module_to_dict(m: RTLModule) -> dict[str, Any]:
    return {
        "name": m.name,
        "family": m.family,
        "params": [list(kv) for kv in m.params],
        "constructs": [_construct_to_dict(c) for c in m.constructs],
    }


def _module_from_dict(data: dict[str, Any]) -> RTLModule:
    return RTLModule(
        name=data["name"],
        family=data["family"],
        params=tuple((k, v) for k, v in data["params"]),
        constructs=tuple(_construct_from_dict(c) for c in data["constructs"]),
    )


def design_to_dict(design: BlockDesign) -> dict[str, Any]:
    """Serialize a validated design to a JSON-compatible dict."""
    design.validate()
    return {
        "name": design.name,
        "modules": [_module_to_dict(m) for m in design.modules.values()],
        "instances": [[i.name, i.module] for i in design.instances],
        "edges": [[e.src, e.dst, e.width] for e in design.edges],
    }


def design_from_dict(data: dict[str, Any]) -> BlockDesign:
    """Rebuild a design serialized by :func:`design_to_dict`."""
    design = BlockDesign(name=data["name"])
    for mod in data["modules"]:
        design.add_module(_module_from_dict(mod))
    for name, module in data["instances"]:
        design.add_instance(name, module)
    for src, dst, width in data["edges"]:
        design.connect(src, dst, width=width)
    design.validate()
    return design


def save_design(design: BlockDesign, path: str | Path) -> None:
    """Write a design to a JSON file."""
    dump_json(design_to_dict(design), path)


def load_design(path: str | Path) -> BlockDesign:
    """Read a design written by :func:`save_design`."""
    return design_from_dict(load_json(path))
