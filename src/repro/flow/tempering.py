"""Cooperative parallel tempering over the shared placement kernel.

:func:`temper` runs N simulated-annealing chains at staggered
temperatures over the same move kernel the SA stitcher and the GA
evolver drive (:mod:`repro.place_kernel`), exchanging configurations
between adjacent-temperature replicas on a deterministic round-based
schedule — the multicore-SA design of cgra_pnr's thunder engine, recast
onto this repo's determinism contract.  Cold chains refine, hot chains
explore, and two cooperation channels connect them:

* **Replica exchange** — every :attr:`PTParams.swap_period` rounds,
  adjacent-temperature pairs may swap placements under the classic
  Metropolis exchange criterion
  ``A = min(1, exp((1/T_cold - 1/T_hot) * (E_cold - E_hot)))``;
  the considered pair parity (``0-1, 2-3, ...`` vs ``1-2, 3-4, ...``)
  alternates per exchange event, so configurations can random-walk up
  and down the whole temperature ladder.
* **Best migration** — every :attr:`PTParams.migrate_every` exchange
  events the globally best placement seen so far replaces the hottest
  chain's state, re-heating the elite solution (thunder-style
  cooperation between annealing cores).

Determinism: *rounds are the synchronization unit*.  Chain ``k`` draws
its moves from a dedicated
:class:`~repro.place_kernel.uniform.UniformBuffer` seeded by
``stream(seed, "tempering", "chain", k)``; every exchange decision
draws from one dedicated exchange stream in fixed pair order — one
draw per considered pair, accepted or not — and never from worker
timing.  Chain segments are dispatched through
:class:`~repro.flow.fanout.FanOut` and merged in deterministic global
operation order, so the returned
:class:`~repro.place_kernel.result.StitchResult` is bitwise identical
for any ``n_workers`` (``tests/test_tempering.py``,
``tests/test_determinism_cross_process.py``).

Budget contract: the chains together execute exactly
``PTParams.max_iters`` kernel move operations (the round plan deals
``steps_per_round`` ops to each chain round-robin until the budget is
spent), so ``temper(max_iters=N)``, ``stitch(max_iters=N)`` and
``evolve(move_budget=N)`` spend the same number of kernel operations
and their costs are directly comparable — the equal-budget contract
the perf-smoke gate (``benchmarks/test_perf_tempering.py``) compares
tempering against :func:`~repro.flow.restarts.stitch_best` under.
Like the SA stitcher's greedy initial and deterministic fill, exchange
bookkeeping (config swaps, migration repaints) is not charged against
the move budget.

Within one run the global best is tracked by *cost* — all chains score
the one shared objective (wirelength + unplaced penalty), exactly like
the SA stitcher's ``best`` and the GA's ``best_fit``.  Selection
*across* runs (``temper_best``, the DSE portfolio) uses the shared
pareto key ``(n_unplaced, final_cost)`` from
:func:`~repro.place_kernel.result.pareto_key`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.device.grid import DeviceGrid
from repro.flow.blockdesign import BlockDesign
from repro.flow.fanout import FanOut
from repro.obs.tracer import NullTracer, Tracer, current_tracer
from repro.place.shapes import Footprint
from repro.place_kernel.kernel import KERNELS, PlacementKernel, run_move_batch
from repro.place_kernel.problem import PlacementProblem
from repro.place_kernel.result import StitchResult, StitchStats, converge_history
from repro.place_kernel.route_cost import build_route_model
from repro.place_kernel.uniform import UniformBuffer
from repro.utils.rng import stream

__all__ = ["PTParams", "temper"]


@dataclass(frozen=True)
class PTParams:
    """Parallel-tempering schedule, ladder and move mix."""

    #: Total kernel-operation budget across *all* chains (one unit = one
    #: SA iteration = one GA budget unit).
    max_iters: int = 60000
    #: Number of replica chains on the temperature ladder.
    n_chains: int = 4
    #: Kernel operations each chain runs per round (the synchronization
    #: quantum; exchange can only happen on round boundaries).
    steps_per_round: int = 250
    #: Rounds between exchange events.
    swap_period: int = 4
    #: Exchange events between migrations of the global best placement
    #: into the hottest chain (0 disables migration).
    migrate_every: int = 2
    #: Temperature ratio between adjacent chains (chain 0 is coldest;
    #: chain k starts at ``T_base * hot_ratio**k``).
    hot_ratio: float = 1.7
    #: Per-round geometric decay of the whole ladder (the coldest chain
    #: cools like a plain SA stitcher with ``steps_per_temp`` ==
    #: ``steps_per_round``).
    alpha: float = 0.95
    #: Cost charged per CLB of unplaced block area (same objective as
    #: ``SAParams.unplaced_weight`` — required for comparable costs).
    unplaced_weight: float = 40.0
    #: Probability of attempting to place an unplaced block per move.
    p_place: float = 0.15
    #: Probability of a same-module swap per move.
    p_swap: float = 0.15
    seed: int = 0
    #: Weight of the channel-overflow congestion cost term (0.0 = off).
    congestion_weight: float = 0.0
    #: Weight of the block-level critical-path cost term (0.0 = off).
    timing_weight: float = 0.0


class _ChainState:
    """One replica's placement, cost and private move stream.

    Plain attributes only, so the state pickles across the FanOut
    boundary; exchange swaps ``pos``/``cost`` between ladder slots while
    each slot keeps its own stream (chain identity follows the
    temperature, not the configuration).
    """

    __slots__ = ("pos", "cost", "u")

    def __init__(
        self,
        pos: list[tuple[int, int] | None],
        cost: float,
        u: UniformBuffer,
    ) -> None:
        self.pos = pos
        self.cost = cost
        self.u = u


#: Per-process kernel context, built once by the FanOut initializer and
#: reused across every round batch (the initializer runs before any task
#: is dispatched, so tasks only ever read this).
_WORKER: dict[str, object] = {}


def _build_kernel(
    design: BlockDesign,
    footprints: dict[str, Footprint],
    grid: DeviceGrid,
    kernel: str,
    unplaced_weight: float,
    congestion_weight: float = 0.0,
    timing_weight: float = 0.0,
    module_delays: Mapping[str, float] | None = None,
) -> tuple[PlacementKernel, tuple[tuple[int, ...], ...], int]:
    problem = PlacementProblem.from_design(design, footprints, grid)
    # Rebuilt identically in every process: build_route_model is a pure
    # function of the problem and the weights, so each worker scores the
    # same objective bit-for-bit.
    route = build_route_model(
        problem,
        congestion_weight=congestion_weight,
        timing_weight=timing_weight,
        module_delays=module_delays,
    )
    st = problem.make_kernel(kernel, unplaced_weight, route)
    return st, problem.swappable, len(problem.edges)


def _init_worker(
    design: BlockDesign,
    footprints: dict[str, Footprint],
    grid: DeviceGrid,
    kernel: str,
    unplaced_weight: float,
    congestion_weight: float = 0.0,
    timing_weight: float = 0.0,
    module_delays: Mapping[str, float] | None = None,
) -> None:
    """FanOut initializer: build this process's kernel exactly once."""
    _WORKER["ctx"] = _build_kernel(
        design, footprints, grid, kernel, unplaced_weight,
        congestion_weight, timing_weight, module_delays,
    )


_COUNTER_FIELDS = (
    "move_attempts",
    "place_attempts",
    "swap_attempts",
    "move_accepts",
    "place_accepts",
    "swap_accepts",
    "illegal",
)


def _counters(st: PlacementKernel) -> tuple[int, ...]:
    return tuple(getattr(st, f) for f in _COUNTER_FIELDS)


def _chain_task(
    args: tuple[_ChainState, list[tuple[int, float]], float, float],
) -> tuple[_ChainState, float, list | None, list[tuple[int, float]], tuple[int, ...]]:
    """Advance one chain through the rounds of an exchange block.

    Restores the chain's placement into the per-process kernel, runs the
    planned ``(steps, temp)`` rounds through the shared batch runner,
    and returns the updated chain plus everything the parent merges at
    the block barrier: the block-best cost, the block-best placement
    snapshot, per-round best events and the move-counter deltas.  A pure
    function of its arguments (plus the per-process kernel), so serial
    and pooled execution are bitwise identical.
    """
    state, specs, p_place, p_swap = args
    st, swappable, _n_edges = _WORKER["ctx"]  # type: ignore[misc]
    if not any(steps for steps, _temp in specs):
        return state, state.cost, None, [], (0,) * len(_COUNTER_FIELDS)
    st.restore(state.pos)
    cost = st.total_cost()
    placed_list = [i for i in range(st.n) if st.pos[i] is not None]
    unplaced_list = [i for i in range(st.n) if st.pos[i] is None]
    before = _counters(st)
    best = cost
    snap: list = []
    events: list[tuple[int, float]] = []
    for r, (steps, temp) in enumerate(specs):
        if steps <= 0:
            continue
        cost, new_best, _batch = run_move_batch(
            st, swappable, placed_list, unplaced_list,
            steps, temp, p_place, p_swap, state.u, cost, best,
            snapshot=snap,
        )
        if new_best < best:
            best = new_best
            events.append((r, best))
    state.pos = list(st.pos)
    state.cost = cost
    after = _counters(st)
    delta = tuple(a - b for a, b in zip(after, before))
    best_pos = snap[0] if snap else None
    return state, best, best_pos, events, delta


def _round_plan(
    max_iters: int, n_chains: int, steps_per_round: int
) -> list[list[int]]:
    """Deal the move budget into per-round, per-chain step counts.

    Chains are served round-robin in ladder order with up to
    ``steps_per_round`` ops each; the final round truncates so the grand
    total is exactly ``max_iters``.
    """
    rows: list[list[int]] = []
    remaining = max_iters
    while remaining > 0:
        row = []
        for _k in range(n_chains):
            take = min(steps_per_round, remaining)
            row.append(take)
            remaining -= take
        rows.append(row)
    return rows


def temper(
    design: BlockDesign,
    footprints: dict[str, Footprint],
    grid: DeviceGrid,
    params: PTParams | None = None,
    *,
    kernel: str = "fast",
    n_workers: int | None = None,
    initial_placements: Mapping[str, tuple[int, int] | None] | None = None,
    module_delays: Mapping[str, float] | None = None,
    tracer: Tracer | NullTracer | None = None,
) -> StitchResult:
    """Place all instances of ``design`` with cooperative replica exchange.

    Parameters
    ----------
    design, footprints, grid:
        As for :func:`~repro.flow.stitcher.stitch`.
    params:
        Ladder, schedule and move-mix configuration;
        ``params.max_iters`` is the SA-comparable total kernel-operation
        budget across all chains.
    kernel:
        Move-kernel choice (``"fast"`` or ``"reference"``); identical
        results on either for a fixed seed.
    initial_placements:
        Optional warm start every chain begins from (same contract as
        :func:`~repro.flow.stitcher.stitch`: anchors apply in instance
        order, non-fitting anchors stay unplaced).  Without it the
        ladder starts from the greedy tallest-first packing.
    module_delays:
        Per-module delays (ns) seeding the timing cost term; ignored
        unless ``params.timing_weight`` is nonzero.  Shipped to every
        worker so all chains score the identical objective.
    n_workers:
        Worker processes to fan the chains over per exchange block.
        ``None``, 0 or 1 runs serially in-process; the result is
        bitwise identical for any value (rounds are the synchronization
        unit, and chain segments merge in deterministic operation
        order, never completion order).
    tracer:
        Where the run's ``tempering`` span tree is recorded
        (``tempering.init`` / ``tempering.rounds`` /
        ``tempering.exchange`` — the three phase names tile the run);
        defaults to the ambient tracer, with a private throwaway tracer
        when that is disabled so :class:`StitchStats` timings cost the
        same either way.

    Returns
    -------
    StitchResult
        The same result shape the SA stitcher returns, extracted from
        the globally best placement any chain ever reached (plus the
        deterministic first-fit fill).  ``result.iterations`` equals
        ``params.max_iters``; ``result.stats.temperature_trace`` holds
        the coldest chain's per-round ``(ops_done, temperature)``.
    """
    params = params or PTParams()
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; choose from {KERNELS}")
    if params.max_iters < 1:
        raise ValueError(f"max_iters must be >= 1, got {params.max_iters}")
    if params.n_chains < 1:
        raise ValueError(f"n_chains must be >= 1, got {params.n_chains}")
    if params.steps_per_round < 1:
        raise ValueError(
            f"steps_per_round must be >= 1, got {params.steps_per_round}"
        )
    if params.swap_period < 1:
        raise ValueError(f"swap_period must be >= 1, got {params.swap_period}")
    if params.migrate_every < 0:
        raise ValueError(
            f"migrate_every must be >= 0, got {params.migrate_every}"
        )
    if params.hot_ratio <= 0.0:
        raise ValueError(f"hot_ratio must be > 0, got {params.hot_ratio}")
    ambient = tracer if tracer is not None else current_tracer()
    tr = ambient if ambient.enabled else Tracer()

    n_chains = params.n_chains
    rounds_s = 0.0
    exchange_s = 0.0

    # The three phase names tile the root span: everything between root
    # entry and exit lives inside an init, rounds or exchange span
    # (finalization — restoring the winner, the fill and the result
    # extraction — is the terminal exchange event), so the phase
    # durations sum to the run's wall time
    # (tests/test_tempering.py::test_phase_timings_tile_wall_time).
    with tr.span(
        "tempering",
        kernel=kernel,
        seed=params.seed,
        n_chains=n_chains,
        max_iters=params.max_iters,
    ) as sp_root:
        fan: FanOut | None = None
        try:
            with tr.span("tempering.init") as sp_init:
                delays = dict(module_delays) if module_delays else None
                fan = FanOut(
                    n_workers,
                    n_chains,
                    initializer=_init_worker,
                    initargs=(
                        design, footprints, grid, kernel,
                        params.unplaced_weight,
                        params.congestion_weight, params.timing_weight,
                        delays,
                    ),
                )
                if fan.pooled:
                    st, swappable, n_edges = _build_kernel(
                        design, footprints, grid, kernel,
                        params.unplaced_weight,
                        params.congestion_weight, params.timing_weight,
                        delays,
                    )
                else:
                    # Serial: the parent shares the single in-process
                    # kernel with the chain tasks.
                    fan.prepare()
                    st, swappable, n_edges = _WORKER["ctx"]  # type: ignore[misc]
                names = st.names
                if initial_placements is None:
                    st.greedy_initial()
                else:
                    st.load_placements(names, initial_placements)
                cost0 = st.total_cost()
                g_best_cost = cost0
                g_best_pos: list[tuple[int, int] | None] = list(st.pos)
                history: list[tuple[int, float]] = [(0, cost0)]
                # Same base temperature heuristic as the SA stitcher:
                # accept about half of typical uphill deltas.
                t_base = max(1.0, 0.05 * cost0 / max(1, n_edges))
                block = max(256, min(8192, 4 * params.steps_per_round))
                chains = [
                    _ChainState(
                        pos=list(st.pos),
                        cost=cost0,
                        u=UniformBuffer(
                            stream(params.seed, "tempering", "chain", k),
                            block=block,
                        ),
                    )
                    for k in range(n_chains)
                ]
                u_ex = UniformBuffer(
                    stream(params.seed, "tempering", "exchange"), block=256
                )
                rows = _round_plan(
                    params.max_iters, n_chains, params.steps_per_round
                )
                # Global op index before each round, for attributing
                # chain events to an absolute budget position.
                row_start: list[int] = []
                acc = 0
                for row in rows:
                    row_start.append(acc)
                    acc += sum(row)
                blocks = [
                    rows[b : b + params.swap_period]
                    for b in range(0, len(rows), params.swap_period)
                ]
                sp_init.incr("n_instances", st.n)
                sp_init.incr("n_rounds", len(rows))
                sp_init.incr("n_blocks", len(blocks))

            counters = [0] * len(_COUNTER_FIELDS)
            temp_trace: list[tuple[int, float]] = []
            n_exchanges = 0
            n_swaps = 0
            n_migrations = 0
            round_idx = 0
            for bi, blk in enumerate(blocks):
                with tr.span(
                    "tempering.rounds", phase="rounds", n_rounds=len(blk)
                ) as sp_r:
                    payloads = []
                    for k in range(n_chains):
                        specs = [
                            (
                                row[k],
                                t_base
                                * params.hot_ratio**k
                                * params.alpha ** (round_idx + j),
                            )
                            for j, row in enumerate(blk)
                        ]
                        payloads.append(
                            (chains[k], specs, params.p_place, params.p_swap)
                        )
                    outs = fan.run(_chain_task, payloads)
                    # Merge in deterministic global-op order: every
                    # chain event is stamped with the op index ending
                    # its round segment, then scanned lowest-first
                    # (ties are impossible — segments are disjoint).
                    candidates: list[tuple[int, float, int]] = []
                    for k, (state, _bb, _bp, events, delta) in enumerate(outs):
                        chains[k] = state
                        counters = [c + d for c, d in zip(counters, delta)]
                        for r_local, c in events:
                            r_glob = round_idx + r_local
                            op = row_start[r_glob] + sum(
                                rows[r_glob][: k + 1]
                            )
                            candidates.append((op, c, k))
                    candidates.sort(key=lambda e: (e[0], e[2]))
                    for op, c, k in candidates:
                        if c < g_best_cost - 1e-9:
                            g_best_cost = c
                            g_best_pos = outs[k][2]
                            history.append((op, c))
                    for j, row in enumerate(blk):
                        temp_trace.append(
                            (
                                row_start[round_idx + j] + sum(row),
                                t_base * params.alpha ** (round_idx + j),
                            )
                        )
                    round_idx += len(blk)
                    sp_r.incr("ops", sum(sum(row) for row in blk))
                rounds_s += sp_r.dur_s

                if bi == len(blocks) - 1:
                    break
                with tr.span("tempering.exchange", phase="exchange") as sp_x:
                    n_exchanges += 1
                    # Adjacent-pair Metropolis exchange; the considered
                    # parity alternates per event.  Temperatures are the
                    # ladder values entering the next round.  One stream
                    # draw per considered pair, accepted or not, keeps
                    # the schedule independent of outcomes.
                    decay = params.alpha**round_idx
                    start = (n_exchanges - 1) % 2
                    for a in range(start, n_chains - 1, 2):
                        b = a + 1
                        ta = t_base * params.hot_ratio**a * decay
                        tb = t_base * params.hot_ratio**b * decay
                        x = u_ex.next()
                        d = (1.0 / max(ta, 1e-9) - 1.0 / max(tb, 1e-9)) * (
                            chains[a].cost - chains[b].cost
                        )
                        if d >= 0.0 or x < math.exp(d):
                            chains[a].pos, chains[b].pos = (
                                chains[b].pos,
                                chains[a].pos,
                            )
                            chains[a].cost, chains[b].cost = (
                                chains[b].cost,
                                chains[a].cost,
                            )
                            n_swaps += 1
                        sp_x.incr("exchange_attempts", 1)
                    if (
                        params.migrate_every > 0
                        and n_exchanges % params.migrate_every == 0
                        and g_best_cost < chains[-1].cost - 1e-9
                    ):
                        chains[-1].pos = list(g_best_pos)
                        chains[-1].cost = g_best_cost
                        n_migrations += 1
                        sp_x.incr("migrations", 1)
                exchange_s += sp_x.dur_s

            # Terminal exchange event: the global best migrates into the
            # result (restore + deterministic fill + extraction).
            with tr.span("tempering.exchange", phase="final") as sp_fin:
                st.restore(g_best_pos)
                st.first_fit_fill()
                wirelength = st.wirelength()
                final_cost = st.total_cost()
                congestion_cost = st.congestion_cost()
                timing_cost = st.timing_cost()
                occupancy = st.occupancy_array()
                placements = {names[i]: st.pos[i] for i in range(st.n)}
                n_placed = sum(1 for p in st.pos if p is not None)
                hist, converged_at = converge_history(
                    history, final_cost, params.max_iters
                )
                sp_fin.incr("n_placed", n_placed)
            exchange_s += sp_fin.dur_s
        finally:
            if fan is not None:
                fan.close()

        for name, value in zip(_COUNTER_FIELDS, counters):
            key = "illegal_moves" if name == "illegal" else name
            sp_root.incr(key, value)
        sp_root.set_attr("n_placed", n_placed)
        sp_root.set_attr("n_unplaced", st.n - n_placed)
        sp_root.set_attr("final_cost", final_cost)
        sp_root.set_attr("converged_at", converged_at)
        sp_root.set_attr("n_exchanges", n_exchanges)
        sp_root.set_attr("n_exchange_accepts", n_swaps)
        sp_root.set_attr("n_migrations", n_migrations)
        if st.route is not None:
            sp_root.set_attr("cost.congestion", congestion_cost)
            sp_root.set_attr("cost.timing", timing_cost)

    # Counters come from the aggregated per-task deltas, never from raw
    # parent-kernel counters, so serial and pooled runs report the same
    # numbers (the parent kernel only sees greedy-initial + restore).
    cdict = dict(zip(_COUNTER_FIELDS, counters))
    stats = StitchStats(
        kernel=kernel,
        seed=params.seed,
        setup_s=0.0,
        initial_s=sp_init.dur_s,
        anneal_s=rounds_s,
        fill_s=exchange_s,
        move_attempts=cdict["move_attempts"],
        place_attempts=cdict["place_attempts"],
        swap_attempts=cdict["swap_attempts"],
        move_accepts=cdict["move_accepts"],
        place_accepts=cdict["place_accepts"],
        swap_accepts=cdict["swap_accepts"],
        illegal_moves=cdict["illegal"],
        temperature_trace=tuple(temp_trace),
    )
    return StitchResult(
        placements=placements,
        n_placed=n_placed,
        n_unplaced=st.n - n_placed,
        wirelength=wirelength,
        final_cost=final_cost,
        iterations=params.max_iters,
        converged_at=converged_at,
        illegal_moves=cdict["illegal"],
        history=hist,
        occupancy=occupancy,
        stats=stats,
        congestion_cost=congestion_cost,
        timing_cost=timing_cost,
    )
