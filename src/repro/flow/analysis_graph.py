"""Graph analysis of block designs (networkx-backed).

Structural diagnostics a frontend wants before compiling: connectivity,
dataflow layering (pipeline stages), cut size between stages, and the
reuse profile that makes a design a good fit for a pre-implemented-block
flow (the paper's §III argument for partition granularity).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.flow.blockdesign import BlockDesign

__all__ = ["DesignGraphStats", "analyze_design", "to_networkx"]


def to_networkx(design: BlockDesign) -> "nx.DiGraph":
    """The design's instance-connectivity graph (edge weight = bus width)."""
    g = nx.DiGraph(name=design.name)
    for inst in design.instances:
        g.add_node(inst.name, module=inst.module)
    for e in design.edges:
        if g.has_edge(e.src, e.dst):
            g[e.src][e.dst]["weight"] += e.width
        else:
            g.add_edge(e.src, e.dst, weight=e.width)
    return g


@dataclass(frozen=True)
class DesignGraphStats:
    """Structural summary of one block design.

    Attributes
    ----------
    n_components:
        Weakly connected components (a compilable design has 1).
    is_dag:
        Whether the dataflow is acyclic (streaming NN pipelines are).
    depth:
        Longest path length in instances (pipeline depth), or -1 for
        cyclic designs.
    max_fan_out:
        Largest out-degree (broadcast pressure on the stitcher).
    reuse_ratio:
        ``instances / unique modules`` — the quantity RW-style flows
        monetize (cnvW1A1: 175/74 ≈ 2.36).
    max_cut_width:
        Largest total bus width crossing any topological layer boundary
        (an upper bound on the inter-stage routing demand).
    """

    n_components: int
    is_dag: bool
    depth: int
    max_fan_out: int
    reuse_ratio: float
    max_cut_width: int

    def render(self) -> str:
        return (
            f"components={self.n_components} dag={self.is_dag} "
            f"depth={self.depth} max_fanout={self.max_fan_out} "
            f"reuse={self.reuse_ratio:.2f} max_cut={self.max_cut_width}"
        )


def analyze_design(design: BlockDesign) -> DesignGraphStats:
    """Compute structural diagnostics for ``design``."""
    design.validate()
    g = to_networkx(design)
    n_components = nx.number_weakly_connected_components(g) if len(g) else 0
    is_dag = nx.is_directed_acyclic_graph(g)

    depth = -1
    max_cut = 0
    if is_dag and len(g):
        depth = nx.dag_longest_path_length(g, weight=None)  # hops, not bits
        # Layer nodes topologically and measure the bus width crossing
        # each boundary.
        layer_of: dict[str, int] = {}
        for i, layer in enumerate(nx.topological_generations(g)):
            for node in layer:
                layer_of[node] = i
        n_layers = max(layer_of.values(), default=0) + 1
        cuts = [0] * max(1, n_layers)
        for u, v, data in g.edges(data=True):
            for boundary in range(layer_of[u], layer_of[v]):
                cuts[boundary] += data["weight"]
        max_cut = max(cuts) if cuts else 0

    max_fan_out = max((d for _, d in g.out_degree()), default=0)
    reuse = design.n_instances / design.n_unique if design.n_unique else 0.0
    return DesignGraphStats(
        n_components=n_components,
        is_dag=is_dag,
        depth=depth,
        max_fan_out=max_fan_out,
        reuse_ratio=reuse,
        max_cut_width=max_cut,
    )
