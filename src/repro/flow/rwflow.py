"""End-to-end RapidWright-style flow.

``run_rw_flow`` = pre-implement all unique modules under a CF policy, then
stitch every instance onto the device.  The result bundles everything the
paper's evaluation reads off: tool runs, per-module CFs, placement counts,
SA convergence and cost, plus the :class:`~repro.flow.preimpl.FlowStats`
observability of the pre-implementation pass.

Infeasible modules degrade gracefully: the flow stitches the placeable
subset of the design, reports every instance of a failed module as
unplaced, and attaches the
:class:`~repro.flow.preimpl.FlowInfeasibleReport` instead of raising.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.device.grid import DeviceGrid
from repro.flow.blockdesign import BlockDesign
from repro.flow.cache import ModuleCache
from repro.flow.policy import CFPolicy
from repro.flow.preimpl import (
    FlowInfeasibleReport,
    FlowStats,
    ImplementedModule,
    implement_design,
)
from repro.flow.evolve import GAParams, evolve
from repro.flow.global_place import GPParams, global_place
from repro.flow.restarts import evolve_best, stitch_best, temper_best
from repro.flow.stitcher import SAParams, StitchResult, stitch
from repro.flow.tempering import PTParams, temper
from repro.place_kernel.result import pareto_key
from repro.obs.tracer import NullTracer, Tracer, current_tracer

__all__ = ["RWFlowResult", "run_rw_flow"]


@dataclass(frozen=True)
class RWFlowResult:
    """Everything produced by one RW-style compilation.

    Attributes
    ----------
    implemented:
        Pre-implementation cache (per unique module; infeasible modules
        are absent — see ``infeasible``).
    stitch:
        Stitched full-device placement.  Instances of infeasible modules
        appear with ``None`` placements and count toward ``n_unplaced``.
    total_tool_runs:
        Place-and-route attempts across all modules (the §VIII run-time
        proxy; stitching is one additional run, not counted here).
        Includes the attempts spent on infeasible modules.
    flow_stats:
        Pre-implementation observability (cache hits, new tool runs, per
        module wall time and prediction error).
    infeasible:
        Report of modules no CF could implement (empty when the whole
        design implemented).
    """

    implemented: dict[str, ImplementedModule]
    stitch: StitchResult
    total_tool_runs: int
    flow_stats: FlowStats = field(default_factory=FlowStats)
    infeasible: FlowInfeasibleReport = field(default_factory=FlowInfeasibleReport)

    @property
    def ok(self) -> bool:
        """True when every unique module implemented."""
        return not self.infeasible

    @property
    def mean_cf(self) -> float:
        """Average implemented CF over modules."""
        cfs = [m.outcome.cf for m in self.implemented.values()]
        return sum(cfs) / len(cfs) if cfs else 0.0

    @property
    def total_pblock_slices(self) -> int:
        """Sum of PBlock capacities — the area budget the stitcher packs."""
        return sum(m.outcome.pblock.caps.slices for m in self.implemented.values())


def run_rw_flow(
    design: BlockDesign,
    grid: DeviceGrid,
    policy: CFPolicy,
    *,
    stitch_grid: DeviceGrid | None = None,
    sa_params: SAParams | None = None,
    placer: str = "sa",
    ga_params: GAParams | None = None,
    pt_params: PTParams | None = None,
    gp_params: GPParams | None = None,
    kernel: str = "fast",
    n_seeds: int = 1,
    n_workers: int | None = None,
    preimpl_workers: int | None = None,
    cache: ModuleCache | None = None,
    cache_dir: str | None = None,
    tracer: Tracer | NullTracer | None = None,
) -> RWFlowResult:
    """Compile ``design`` with pre-implemented blocks.

    Parameters
    ----------
    design:
        The block design.
    grid:
        Device used for per-module pre-implementation (PBlock sizing).
    policy:
        CF selection policy.
    stitch_grid:
        Device for the final stitching; defaults to ``grid``.  The paper
        sizes modules against the xc7z020 but evaluates estimator-driven
        stitching on the xc7z045 (§VIII).
    sa_params:
        Stitcher annealing parameters (used when ``placer="sa"``).
    placer:
        Which portfolio optimizer places the design: ``"sa"`` (the
        annealing stitcher, the default), ``"ga"`` (the evolutionary
        placer of :mod:`repro.flow.evolve`), ``"pt"`` (cooperative
        parallel tempering, :mod:`repro.flow.tempering`), ``"gp"`` (the
        analytic global placer of :mod:`repro.flow.global_place` alone)
        or ``"gp+sa"`` (analytic warm start, then an anneal at *half*
        the SA move budget — the warm-start pipeline's budget contract).
    ga_params:
        GA parameters when ``placer="ga"`` (``None`` = defaults).
    pt_params:
        Tempering parameters when ``placer="pt"`` (``None`` = defaults).
    gp_params:
        Analytic-placer parameters when ``placer`` is ``"gp"`` or
        ``"gp+sa"`` (``None`` derives them from ``sa_params`` so the
        costs stay comparable).
    kernel:
        Stitcher move-kernel (``"fast"`` or ``"reference"``).
    n_seeds:
        SA restarts; values > 1 stitch ``n_seeds`` independent seeds via
        :func:`~repro.flow.restarts.stitch_best` and keep the best run.
    n_workers:
        Worker processes for the restarts (``None``/1 = serial).
    preimpl_workers:
        Worker processes for the per-module pre-implementation fan-out
        (``None``/1 = serial; results are worker-count independent).
    cache:
        Shared :class:`~repro.flow.cache.ModuleCache`; a warm cache skips
        tool runs for unchanged modules.
    cache_dir:
        Disk-persistent cache root when ``cache`` is not given.
    tracer:
        Where the flow's span tree is recorded: a ``flow`` root whose
        children are the pre-implementation's ``preimpl`` span and the
        stitching's ``stitch`` (or ``stitch.restarts``) span.  Defaults
        to the ambient tracer; a disabled tracer makes every flow-level
        span a no-op while the nested stages keep deriving their stats
        from private traces.
    """
    ambient = tracer if tracer is not None else current_tracer()
    with ambient.span("flow", design=design.name, grid=grid.name) as sp:
        pre = implement_design(
            design,
            grid,
            policy,
            n_workers=preimpl_workers,
            cache=cache,
            cache_dir=cache_dir,
            tracer=ambient,
        )
        footprints = {
            name: impl.outcome.result.footprint
            for name, impl in pre.items()
            if impl.outcome.result.footprint is not None
        }
        # Per-module intra-block delays seed the placers' optional timing
        # cost term (inert at the default timing_weight == 0.0).
        module_delays = {
            name: impl.timing.total_ns for name, impl in pre.items()
        }
        target = stitch_grid or grid

        missing = [i for i in design.instances if i.module not in footprints]
        stitchable = design if not missing else design.subset(set(footprints))
        if placer not in ("sa", "ga", "pt", "gp", "gp+sa"):
            raise ValueError(
                f"unknown placer {placer!r}; "
                "choose from ('sa', 'ga', 'pt', 'gp', 'gp+sa')"
            )
        if stitchable.instances:
            if placer == "ga":
                if n_seeds > 1:
                    result = evolve_best(
                        stitchable, footprints, target, ga_params,
                        n_seeds=n_seeds, n_workers=n_workers, kernel=kernel,
                        module_delays=module_delays, tracer=ambient,
                    )
                else:
                    result = evolve(
                        stitchable, footprints, target, ga_params,
                        kernel=kernel, module_delays=module_delays,
                        tracer=ambient,
                    )
            elif placer == "pt":
                if n_seeds > 1:
                    result = temper_best(
                        stitchable, footprints, target, pt_params,
                        n_seeds=n_seeds, n_workers=n_workers, kernel=kernel,
                        module_delays=module_delays, tracer=ambient,
                    )
                else:
                    result = temper(
                        stitchable, footprints, target, pt_params,
                        kernel=kernel, n_workers=n_workers,
                        module_delays=module_delays, tracer=ambient,
                    )
            elif placer in ("gp", "gp+sa"):
                # The analytic placer is deterministic in its seed, so
                # the restart family is meaningless for the gp stage;
                # gp+sa fans the *polish* anneal out instead.
                sa = sa_params or SAParams()
                gp = gp_params or GPParams(
                    unplaced_weight=sa.unplaced_weight, seed=sa.seed,
                    congestion_weight=sa.congestion_weight,
                    timing_weight=sa.timing_weight,
                )
                warm = global_place(
                    stitchable, footprints, target, gp,
                    kernel=kernel, module_delays=module_delays,
                    tracer=ambient,
                )
                if placer == "gp":
                    result = warm
                else:
                    # Budget contract: the warm start is uncharged and
                    # the polish anneal runs at half the SA budget, so
                    # gp+sa spends <= 50% of the cold stitcher's kernel
                    # ops (benchmarks/test_perf_warmstart.py).
                    anneal = replace(sa, max_iters=max(1, sa.max_iters // 2))
                    if n_seeds > 1:
                        result = stitch_best(
                            stitchable, footprints, target, anneal,
                            n_seeds=n_seeds, n_workers=n_workers,
                            kernel=kernel,
                            initial_placements=warm.placements,
                            module_delays=module_delays,
                            tracer=ambient,
                        )
                    else:
                        result = stitch(
                            stitchable, footprints, target, anneal,
                            kernel=kernel,
                            initial_placements=warm.placements,
                            module_delays=module_delays,
                            tracer=ambient,
                        )
                    result = min(warm, result, key=pareto_key)
            elif n_seeds > 1:
                result = stitch_best(
                    stitchable, footprints, target, sa_params,
                    n_seeds=n_seeds, n_workers=n_workers, kernel=kernel,
                    module_delays=module_delays, tracer=ambient,
                )
            else:
                result = stitch(
                    stitchable, footprints, target, sa_params, kernel=kernel,
                    module_delays=module_delays, tracer=ambient,
                )
        else:  # nothing placeable: synthesize an empty stitching outcome
            result = StitchResult(
                placements={},
                n_placed=0,
                n_unplaced=0,
                wirelength=0.0,
                final_cost=0.0,
                iterations=0,
                converged_at=0,
                illegal_moves=0,
            )
        if missing:
            placements = dict(result.placements)
            placements.update({i.name: None for i in missing})
            result = replace(
                result,
                placements=placements,
                n_unplaced=result.n_unplaced + len(missing),
            )

        runs = pre.stats.total_tool_runs
        sp.incr("total_tool_runs", runs)
        sp.set_attr("n_placed", result.n_placed)
        sp.set_attr("n_unplaced", result.n_unplaced)
    return RWFlowResult(
        implemented=dict(pre.modules),
        stitch=result,
        total_tool_runs=runs,
        flow_stats=pre.stats,
        infeasible=pre.report,
    )
