"""End-to-end RapidWright-style flow.

``run_rw_flow`` = pre-implement all unique modules under a CF policy, then
stitch every instance onto the device.  The result bundles everything the
paper's evaluation reads off: tool runs, per-module CFs, placement counts,
SA convergence and cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.grid import DeviceGrid
from repro.flow.blockdesign import BlockDesign
from repro.flow.policy import CFPolicy
from repro.flow.preimpl import ImplementedModule, implement_design
from repro.flow.restarts import stitch_best
from repro.flow.stitcher import SAParams, StitchResult, stitch

__all__ = ["RWFlowResult", "run_rw_flow"]


@dataclass(frozen=True)
class RWFlowResult:
    """Everything produced by one RW-style compilation.

    Attributes
    ----------
    implemented:
        Pre-implementation cache (per unique module).
    stitch:
        Stitched full-device placement.
    total_tool_runs:
        Place-and-route attempts across all modules (the §VIII run-time
        proxy; stitching is one additional run, not counted here).
    """

    implemented: dict[str, ImplementedModule]
    stitch: StitchResult
    total_tool_runs: int

    @property
    def mean_cf(self) -> float:
        """Average implemented CF over modules."""
        cfs = [m.outcome.cf for m in self.implemented.values()]
        return sum(cfs) / len(cfs) if cfs else 0.0

    @property
    def total_pblock_slices(self) -> int:
        """Sum of PBlock capacities — the area budget the stitcher packs."""
        return sum(m.outcome.pblock.caps.slices for m in self.implemented.values())


def run_rw_flow(
    design: BlockDesign,
    grid: DeviceGrid,
    policy: CFPolicy,
    *,
    stitch_grid: DeviceGrid | None = None,
    sa_params: SAParams | None = None,
    kernel: str = "fast",
    n_seeds: int = 1,
    n_workers: int | None = None,
) -> RWFlowResult:
    """Compile ``design`` with pre-implemented blocks.

    Parameters
    ----------
    design:
        The block design.
    grid:
        Device used for per-module pre-implementation (PBlock sizing).
    policy:
        CF selection policy.
    stitch_grid:
        Device for the final stitching; defaults to ``grid``.  The paper
        sizes modules against the xc7z020 but evaluates estimator-driven
        stitching on the xc7z045 (§VIII).
    sa_params:
        Stitcher annealing parameters.
    kernel:
        Stitcher move-kernel (``"fast"`` or ``"reference"``).
    n_seeds:
        SA restarts; values > 1 stitch ``n_seeds`` independent seeds via
        :func:`~repro.flow.restarts.stitch_best` and keep the best run.
    n_workers:
        Worker processes for the restarts (``None``/1 = serial).
    """
    implemented = implement_design(design, grid, policy)
    footprints = {
        name: impl.outcome.result.footprint
        for name, impl in implemented.items()
        if impl.outcome.result.footprint is not None
    }
    target = stitch_grid or grid
    if n_seeds > 1:
        result = stitch_best(
            design, footprints, target, sa_params,
            n_seeds=n_seeds, n_workers=n_workers, kernel=kernel,
        )
    else:
        result = stitch(design, footprints, target, sa_params, kernel=kernel)
    runs = sum(m.outcome.n_runs for m in implemented.values())
    return RWFlowResult(implemented=implemented, stitch=result, total_tool_runs=runs)
