"""Content-addressed, persistent pre-implementation cache.

The paper's economic argument (§I, §VIII) rests on implementing each of
the 74 unique cnvW1A1 modules exactly once and reusing the result across
175 instances *and across DSE steps*.  :class:`ModuleCache` makes that
reuse durable: an implemented module is stored under a key derived from
everything that determines the implementation —

* the module's content (name, family, generator params, constructs),
* the CF policy and its parameters (a trained estimator hashes its
  weights), and
* the pre-implementation device grid.

Entries live in an in-memory dict with an optional disk layer underneath
(one pickle file per key inside ``cache_dir``), so a second flow run — or
a DSE session started tomorrow — warm-starts with zero tool runs for
unchanged modules.  Keys are SHA-256 hex digests; any change to a
module, policy or grid produces a different key, so stale entries can
never be served.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.device.grid import DeviceGrid
from repro.rtlgen.base import RTLModule

if TYPE_CHECKING:  # avoid a cycle: preimpl imports cache for its store
    from repro.flow.policy import CFPolicy
    from repro.flow.preimpl import ImplementedModule

__all__ = [
    "CacheStats",
    "ModuleCache",
    "cache_key",
    "grid_fingerprint",
    "module_fingerprint",
    "policy_fingerprint",
]

#: Bump when the on-disk entry layout changes; part of every key, so old
#: stores are silently treated as cold instead of mis-deserialized.
CACHE_FORMAT = 1


def _digest(*parts: object) -> str:
    """SHA-256 over ``repr`` of the parts (stable across processes)."""
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")
    return h.hexdigest()


def module_fingerprint(module: RTLModule) -> str:
    """Content hash of one module.

    Includes the module *name* because per-module placer noise is keyed
    on it — two identical construct bags with different names implement
    to different slice counts (see :mod:`repro.place.packer`).
    """
    return _digest(
        "module",
        module.name,
        module.family,
        module.params,
        tuple(repr(c) for c in module.constructs),
    )


def grid_fingerprint(grid: DeviceGrid) -> str:
    """Hash of the device geometry a pre-implementation targeted."""
    return _digest(
        "grid",
        grid.name,
        grid.n_regions,
        tuple(k.value for k in grid.kinds()),
    )


def policy_fingerprint(policy: "CFPolicy") -> str:
    """Hash of a CF policy's identity and parameters.

    Prefers the policy's own :meth:`~repro.flow.policy.CFPolicy.fingerprint`
    (which a learned policy overrides to hash its trained weights); falls
    back to the class name plus dataclass init fields.
    """
    fp = getattr(policy, "fingerprint", None)
    if callable(fp):
        return _digest("policy", fp())
    return _digest("policy", _default_policy_fields(policy))


def _default_policy_fields(policy: object) -> str:
    name = type(policy).__qualname__
    if dataclasses.is_dataclass(policy):
        parts = ",".join(
            f"{f.name}={getattr(policy, f.name)!r}"
            for f in dataclasses.fields(policy)
            if f.init
        )
        return f"{name}({parts})"
    return name


def cache_key(module: RTLModule, grid: DeviceGrid, policy: "CFPolicy") -> str:
    """The content-addressed key of one (module, grid, policy) triple."""
    return _digest(
        "preimpl",
        CACHE_FORMAT,
        module_fingerprint(module),
        grid_fingerprint(grid),
        policy_fingerprint(policy),
    )


def stable_json_digest(obj: object) -> str:
    """Hash an arbitrary JSON-able object (used for estimator weights)."""
    from repro.utils.serialization import to_jsonable

    return hashlib.sha256(
        json.dumps(to_jsonable(obj), sort_keys=True).encode("utf-8")
    ).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ModuleCache`."""

    mem_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def hits(self) -> int:
        """All hits, either layer."""
        return self.mem_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0


class ModuleCache:
    """Two-layer (memory + optional disk) store of implemented modules.

    Parameters
    ----------
    cache_dir:
        Directory for the persistent layer; ``None`` keeps the cache
        purely in-memory.  The directory is created on first use, and
        each entry is one ``<key>.pkl`` file written atomically
        (temp file + rename), so concurrent flows sharing a directory
        never observe torn entries.

    Notes
    -----
    Unreadable or corrupt disk entries are treated as misses (and
    removed), never as errors: a cache must degrade to "cold", not crash
    the flow.
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None) -> None:
        self._mem: dict[str, "ImplementedModule"] = {}
        self.cache_dir = Path(cache_dir).expanduser() if cache_dir else None
        self.stats = CacheStats()

    # ------------------------------------------------------------------ keys

    @staticmethod
    def key(module: RTLModule, grid: DeviceGrid, policy: "CFPolicy") -> str:
        """Delegates to :func:`cache_key`."""
        return cache_key(module, grid, policy)

    # ------------------------------------------------------------------ store

    def _path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.pkl"

    def get(self, key: str) -> "ImplementedModule | None":
        """Look a key up: memory first, then disk.  ``None`` on miss."""
        impl = self._mem.get(key)
        if impl is not None:
            self.stats.mem_hits += 1
            return impl
        if self.cache_dir is not None:
            path = self._path(key)
            try:
                with open(path, "rb") as fh:
                    impl = pickle.load(fh)
            except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                    ImportError, IndexError):
                impl = None
                try:  # corrupt entry: drop it so the next run re-implements
                    path.unlink(missing_ok=True)
                except OSError:
                    pass
            if impl is not None:
                self._mem[key] = impl
                self.stats.disk_hits += 1
                return impl
        self.stats.misses += 1
        return None

    def put(self, key: str, impl: "ImplementedModule") -> None:
        """Store an entry in memory and (when configured) on disk."""
        self._mem[key] = impl
        self.stats.stores += 1
        if self.cache_dir is None:
            return
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            path = self._path(key)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            with open(tmp, "wb") as fh:
                pickle.dump(impl, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            # Read-only or full filesystem: keep the in-memory layer only.
            pass

    # ------------------------------------------------------------------ admin

    def __len__(self) -> int:
        return len(self._mem)

    def __contains__(self, key: str) -> bool:
        if key in self._mem:
            return True
        return self.cache_dir is not None and self._path(key).exists()

    @property
    def n_disk_entries(self) -> int:
        """Entries currently persisted on disk (0 for in-memory caches)."""
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*.pkl"))  # repro: noqa[DET005] order-free count of entries

    def clear(self, *, disk: bool = False) -> None:
        """Drop the in-memory layer; also the disk layer when ``disk``."""
        self._mem.clear()
        if disk and self.cache_dir is not None and self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*.pkl"):  # repro: noqa[DET005] unconditional delete of every entry; order is irrelevant
                try:
                    path.unlink()
                except OSError:
                    pass

    def describe(self) -> str:
        """One-line summary for logs and the CLI."""
        where = str(self.cache_dir) if self.cache_dir else "<memory>"
        s = self.stats
        return (
            f"cache[{where}]: {len(self._mem)} in memory, "
            f"{self.n_disk_entries} on disk; "
            f"{s.hits} hits ({s.mem_hits} mem / {s.disk_hits} disk), "
            f"{s.misses} misses"
        )
