"""Evolutionary (GA) macro placer over the shared placement kernel.

A deterministic memetic genetic algorithm, a peer of the SA stitcher
(paper-adjacent grounding: RapidLayout's evolutionary hard-block
placement and Kroes et al.'s evolutionary bin packing both show
evolution competitive with annealing on exactly this block-to-region
assignment problem).  The genome is a *permutation* (the order blocks
claim device area) plus a *placement-shape* gene per instance (its
preferred compatible column); decoding greedily packs blocks in genome
order, repairing to legality by scanning the remaining compatible
columns.  Crossover recombines column assignments gene-wise and
placement order via order-crossover; mutation perturbs both and — the
memetic part — applies a few hill-climbing moves through the *same*
move kernel the SA stitcher anneals with
(:mod:`repro.place_kernel.kernel`), so SA and GA obey identical
legality rules and produce directly comparable costs.

Budget accounting is move-compatible with SA: one kernel placement
operation (a decode step, a restore step, or one ``try_move`` /
``try_place`` / ``try_swap`` call) costs one unit of
:attr:`GAParams.move_budget`, exactly what one SA iteration costs.
``evolve`` with ``move_budget=N`` and ``stitch`` with ``max_iters=N``
spend the same number of kernel operations — the equal-budget contract
the perf-smoke gate compares them under.

Determinism: every random decision draws from one batched
:class:`~repro.place_kernel.uniform.UniformBuffer` stream seeded by
``GAParams.seed``; generation counts are fixed by the budget (no
wall-clock or cost-based stopping), so a fixed configuration reproduces
bit-for-bit in any process (``tests/test_determinism_cross_process.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.device.grid import DeviceGrid
from repro.flow.blockdesign import BlockDesign
from repro.obs.tracer import NullTracer, Tracer, current_tracer
from repro.place.shapes import Footprint
from repro.place_kernel.kernel import KERNELS, PlacementKernel, run_move_batch
from repro.place_kernel.problem import PlacementProblem
from repro.place_kernel.result import StitchResult, StitchStats, converge_history
from repro.place_kernel.route_cost import build_route_model
from repro.place_kernel.uniform import UniformBuffer

__all__ = ["GAParams", "evolve"]


@dataclass(frozen=True)
class GAParams:
    """Genetic-algorithm configuration.

    The generation count is derived from ``move_budget`` (population
    decodes until the evolution share of the budget is spent), so runs
    are budget-bounded and deterministic rather than wall-clock bound.
    """

    #: Total kernel-operation budget, directly comparable to the SA
    #: stitcher's ``max_iters`` (one unit = one placement op).
    move_budget: int = 20000
    #: Individuals per generation (shrunk automatically when the budget
    #: cannot afford a full population).
    population: int = 16
    #: Tournament size for parent selection.
    tournament: int = 3
    #: Probability a child is bred by crossover (else a mutated clone).
    p_crossover: float = 0.9
    #: Fraction of column genes re-drawn per mutation.
    col_mutation: float = 0.15
    #: Permutation swap mutations per child.
    perm_swaps: int = 1
    #: Kernel hill-climbing moves applied to each child after decoding
    #: (the memetic "mutation via the shared move kernel").
    child_moves: int = 4
    #: Individuals copied unchanged into the next generation.
    elite: int = 2
    #: Trailing fraction of the budget spent hill-climbing the best
    #: placement with kernel moves (the repair/polish phase).
    polish_frac: float = 0.5
    #: Probability of a place attempt per polish move (mirrors SAParams).
    p_place: float = 0.15
    #: Probability of a same-module swap per polish move.
    p_swap: float = 0.15
    #: Cost charged per CLB of unplaced block area (same objective as
    #: ``SAParams.unplaced_weight`` — required for comparable costs).
    unplaced_weight: float = 40.0
    seed: int = 0
    #: Weight of the channel-overflow congestion cost term (0.0 = off).
    congestion_weight: float = 0.0
    #: Weight of the block-level critical-path cost term (0.0 = off).
    timing_weight: float = 0.0


class _Genome:
    """Permutation + per-instance preferred-column gene."""

    __slots__ = ("perm", "cols", "fit")

    def __init__(self, perm: list[int], cols: list[int]) -> None:
        self.perm = perm
        self.cols = cols
        self.fit = float("inf")

    def clone(self) -> "_Genome":
        g = _Genome(list(self.perm), list(self.cols))
        g.fit = self.fit
        return g


class _Budget:
    """Kernel-operation meter; one unit == one SA iteration."""

    __slots__ = ("used", "limit")

    def __init__(self, limit: int) -> None:
        self.used = 0
        self.limit = limit

    def charge(self, n: int) -> None:
        self.used += n

    def remaining(self) -> int:
        return self.limit - self.used


def _decode(st: PlacementKernel, g: _Genome, budget: _Budget) -> float:
    """Greedy-pack the genome onto an empty device; repairs to legality.

    Each instance tries its preferred column first and then the
    remaining compatible columns in rotation (the repair scan), taking
    the lowest fitting row in the first column that accepts it.
    Instances with no legal site stay unplaced (penalized by cost).
    """
    st.clear()
    for i in g.perm:
        xs = st.anchors_x[i]
        if not xs or st.y_max[i] < 0:
            continue
        start = g.cols[i] % len(xs)
        for k in range(len(xs)):
            x = xs[(start + k) % len(xs)]
            y = st.lowest_fit_y(i, x)
            if y is not None:
                st.set_pos(i, (x, y))
                st.paint(i, x, y, +1)
                break
    budget.charge(max(1, st.n))
    return st.total_cost()


def _micro_polish(
    st: PlacementKernel, n_moves: int, u: UniformBuffer, budget: _Budget
) -> float:
    """A few zero-temperature kernel moves (the memetic mutation)."""
    delta = 0.0
    placed = [i for i in range(st.n) if st.pos[i] is not None]
    if not placed:
        return 0.0
    for _ in range(n_moves):
        i = placed[u.index(len(placed))]
        delta += st.try_move(i, 0.0, u)
        budget.charge(1)
    return delta


def _tournament(pop: list[_Genome], k: int, u: UniformBuffer) -> _Genome:
    best = pop[u.index(len(pop))]
    for _ in range(k - 1):
        cand = pop[u.index(len(pop))]
        if cand.fit < best.fit:
            best = cand
    return best


def _crossover(a: _Genome, b: _Genome, u: UniformBuffer) -> _Genome:
    """Column-assignment crossover + order crossover on the permutation."""
    n = len(a.perm)
    cols = [a.cols[i] if u.next() < 0.5 else b.cols[i] for i in range(n)]
    if n > 1:
        cut = 1 + u.index(n - 1)
        head = a.perm[:cut]
        taken = set(head)
        perm = head + [i for i in b.perm if i not in taken]
    else:
        perm = list(a.perm)
    return _Genome(perm, cols)


def _mutate(g: _Genome, params: GAParams, u: UniformBuffer) -> None:
    n = len(g.perm)
    if n > 1:
        for _ in range(params.perm_swaps):
            i = u.index(n)
            j = u.index(n - 1)
            if j >= i:
                j += 1
            g.perm[i], g.perm[j] = g.perm[j], g.perm[i]
    n_col = max(1, int(n * params.col_mutation)) if n else 0
    for _ in range(n_col):
        i = u.index(n)
        g.cols[i] = u.index(1 << 16)


def evolve(
    design: BlockDesign,
    footprints: dict[str, Footprint],
    grid: DeviceGrid,
    params: GAParams | None = None,
    *,
    kernel: str = "fast",
    module_delays: Mapping[str, float] | None = None,
    tracer: Tracer | NullTracer | None = None,
) -> StitchResult:
    """Place all instances of ``design`` on ``grid`` with the GA.

    Parameters
    ----------
    design, footprints, grid:
        As for :func:`~repro.flow.stitcher.stitch`.
    params:
        GA configuration; ``params.move_budget`` is the SA-comparable
        kernel-operation budget.
    module_delays:
        Per-module delays (ns) seeding the timing cost term; ignored
        unless ``params.timing_weight`` is nonzero.
    kernel:
        Move-kernel choice (``"fast"`` or ``"reference"``); the GA
        produces identical results on either for a fixed seed.
    tracer:
        Where the run's ``evolve`` span tree (``evolve.init`` /
        ``evolve.generations`` / ``evolve.repair`` — the three phases
        tile the run) is recorded; defaults to the ambient tracer, with
        a private throwaway tracer when that is disabled (so
        :class:`StitchStats` timings cost the same either way).

    Returns
    -------
    StitchResult
        The same result shape the SA stitcher returns;
        ``result.iterations`` is the consumed move budget and
        ``result.stats.temperature_trace`` holds the per-generation
        ``(budget_used, best_cost)`` trajectory.
    """
    params = params or GAParams()
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; choose from {KERNELS}")
    ambient = tracer if tracer is not None else current_tracer()
    tr = ambient if ambient.enabled else Tracer()

    with tr.span(
        "evolve", kernel=kernel, seed=params.seed, move_budget=params.move_budget
    ) as sp_root:
        # ---------------------------------------------------------- init
        with tr.span("evolve.init") as sp_init:
            problem = PlacementProblem.from_design(design, footprints, grid)
            names = problem.names
            route = build_route_model(
                problem,
                congestion_weight=params.congestion_weight,
                timing_weight=params.timing_weight,
                module_delays=module_delays,
            )
            st = problem.make_kernel(kernel, params.unplaced_weight, route)
            swappable = problem.swappable
            n = st.n
            budget = _Budget(max(1, params.move_budget))
            polish_budget = int(budget.limit * params.polish_frac)
            evolve_budget = budget.limit - polish_budget
            u = UniformBuffer(np.random.default_rng(params.seed), block=4096)

            decode_cost = max(1, n)
            # The seeded elite: greedy packing order with each block's
            # chosen column folded back into its column gene, so the GA
            # starts no worse than the SA stitcher's initial heuristic.
            st.greedy_initial()
            budget.charge(decode_cost)
            seeded = _Genome(st.greedy_order(), [0] * n)
            for i in range(n):
                p = st.pos[i]
                if p is not None:
                    seeded.cols[i] = st.anchors_x[i].index(p[0])
            seeded.fit = st.total_cost()

            best_fit = seeded.fit
            best_pos: list[tuple[int, int] | None] = list(st.pos)
            history: list[tuple[int, float]] = [(0, best_fit)]

            # Population sizing: keep at least two parents, but never
            # spend the whole evolution share on generation zero.
            affordable = max(2, evolve_budget // (2 * decode_cost))
            pop_size = max(2, min(params.population, affordable))
            population = [seeded]
            for _ in range(pop_size - 1):
                if (
                    len(population) >= 2
                    and budget.used + decode_cost + params.child_moves
                    > evolve_budget
                ):
                    break
                perm = list(range(n))
                for i in range(n - 1, 0, -1):  # seeded Fisher-Yates
                    j = u.index(i + 1)
                    perm[i], perm[j] = perm[j], perm[i]
                g = _Genome(perm, [u.index(1 << 16) for _ in range(n)])
                g.fit = _decode(st, g, budget)
                g.fit += _micro_polish(st, params.child_moves, u, budget)
                if g.fit < best_fit:
                    best_fit = g.fit
                    best_pos = list(st.pos)
                    history.append((budget.used, best_fit))
                population.append(g)
            sp_init.incr("n_instances", n)
            sp_init.incr("population", len(population))

        # --------------------------------------------------- generations
        with tr.span("evolve.generations") as sp_gen:
            # At least one child must be bred per generation, or the
            # loop would spin without ever charging the budget.
            elite_eff = min(params.elite, pop_size - 1)
            n_children = pop_size - elite_eff
            gen_cost = n_children * (decode_cost + params.child_moves)
            generations = 0
            while budget.used + gen_cost <= evolve_budget:
                generations += 1
                population.sort(key=lambda g: g.fit)
                children: list[_Genome] = [
                    g.clone() for g in population[:elite_eff]
                ]
                while len(children) < pop_size:
                    a = _tournament(population, params.tournament, u)
                    if u.next() < params.p_crossover:
                        b = _tournament(population, params.tournament, u)
                        child = _crossover(a, b, u)
                    else:
                        child = a.clone()
                    _mutate(child, params, u)
                    child.fit = _decode(st, child, budget)
                    child.fit += _micro_polish(st, params.child_moves, u, budget)
                    if child.fit < best_fit:
                        best_fit = child.fit
                        best_pos = list(st.pos)
                        history.append((budget.used, best_fit))
                    children.append(child)
                population = children
            sp_gen.incr("generations", generations)
            sp_gen.incr("evolve_ops", budget.used)

        # -------------------------------------------------------- repair
        with tr.span("evolve.repair") as sp_repair:
            # Hill-climb the best placement ever seen with the shared
            # move kernel for the remaining budget, then repair any
            # leftover unplaced blocks deterministically.
            st.restore(best_pos)
            budget.charge(decode_cost)
            cost = st.total_cost()
            if cost < best_fit:
                best_fit = cost
                history.append((budget.used, best_fit))
            placed_list = [i for i in range(n) if st.pos[i] is not None]
            unplaced_list = [i for i in range(n) if st.pos[i] is None]
            steps = budget.remaining()
            if steps > 0:
                start = budget.used
                cost, best_fit, events = run_move_batch(
                    st, swappable, placed_list, unplaced_list,
                    steps, 0.0, params.p_place, params.p_swap, u, cost, best_fit,
                )
                budget.charge(steps)
                for off, c in events:
                    history.append((start + off, c))
            st.first_fit_fill()

            wirelength = st.wirelength()
            final_cost = st.total_cost()
            congestion_cost = st.congestion_cost()
            timing_cost = st.timing_cost()
            hist, converged_at = converge_history(
                history, final_cost, budget.used
            )
            history = list(hist)
            occupancy = st.occupancy_array()
            placements = {names[i]: st.pos[i] for i in range(n)}
            n_placed = sum(1 for p in st.pos if p is not None)
            sp_repair.incr("polish_ops", budget.used)
            sp_repair.incr("n_placed", n_placed)

        sp_gen.incr("move_attempts", st.move_attempts)
        sp_gen.incr("place_attempts", st.place_attempts)
        sp_gen.incr("swap_attempts", st.swap_attempts)
        sp_root.set_attr("n_placed", n_placed)
        sp_root.set_attr("n_unplaced", n - n_placed)
        sp_root.set_attr("final_cost", final_cost)
        sp_root.set_attr("generations", generations)
        sp_root.set_attr("converged_at", converged_at)
        if route is not None:
            sp_root.set_attr("cost.congestion", congestion_cost)
            sp_root.set_attr("cost.timing", timing_cost)

    stats = StitchStats(
        kernel=kernel,
        seed=params.seed,
        setup_s=0.0,
        initial_s=sp_init.dur_s,
        anneal_s=sp_gen.dur_s,
        fill_s=sp_repair.dur_s,
        move_attempts=st.move_attempts,
        place_attempts=st.place_attempts,
        swap_attempts=st.swap_attempts,
        move_accepts=st.move_accepts,
        place_accepts=st.place_accepts,
        swap_accepts=st.swap_accepts,
        illegal_moves=st.illegal,
        temperature_trace=tuple(history),
    )
    return StitchResult(
        placements=placements,
        n_placed=n_placed,
        n_unplaced=n - n_placed,
        wirelength=wirelength,
        final_cost=final_cost,
        iterations=budget.used,
        converged_at=converged_at,
        illegal_moves=st.illegal,
        history=tuple(history),
        occupancy=occupancy,
        stats=stats,
        congestion_cost=congestion_cost,
        timing_cost=timing_cost,
    )
