"""Partial-reconfiguration baseline (the paper's §II comparison).

PRFlow-style systems fix reconfigurable partitions at compile time; at
run time a module update must fit its assigned partition.  The paper's
§I/§II critique: "the updated module might have a much higher or lower
resource usage than the assigned FPGA area. In the first case, the
reconfiguration is unfeasible. In the latter one, the module uses fewer
resources than assigned, wasting area."

This module implements that baseline so the critique can be measured:
partitions are provisioned once (with a headroom factor over the initial
modules), and a DSE step either fits — wasting the headroom — or fails
and forces a full re-floorplan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.grid import DeviceGrid
from repro.flow.blockdesign import BlockDesign
from repro.flow.cache import ModuleCache
from repro.flow.policy import CFPolicy
from repro.flow.rwflow import RWFlowResult, run_rw_flow
from repro.flow.stitcher import SAParams
from repro.netlist.stats import NetlistStats, compute_stats
from repro.place.packer import slice_demand
from repro.synth.mapper import opt_design, synthesize
from repro.utils.validation import check_positive

__all__ = [
    "Partition",
    "PRPlan",
    "plan_partitions",
    "apply_update",
    "refloorplan",
]


@dataclass(frozen=True)
class Partition:
    """One fixed reconfigurable partition."""

    module: str
    capacity_slices: int

    def fits(self, demand: int) -> bool:
        """Whether a module with ``demand`` slices reconfigures into it."""
        return demand <= self.capacity_slices


@dataclass(frozen=True)
class PRPlan:
    """A compile-time partition plan for a block design."""

    partitions: dict[str, Partition]
    headroom: float

    @property
    def total_capacity(self) -> int:
        """Reserved device area (the static cost of the PR approach)."""
        return sum(p.capacity_slices for p in self.partitions.values())

    def waste_for(self, demands: dict[str, int]) -> int:
        """Reserved-but-unused slices for the given module demands."""
        waste = 0
        for name, p in self.partitions.items():
            waste += max(0, p.capacity_slices - demands.get(name, 0))
        return waste


@dataclass(frozen=True)
class UpdateOutcome:
    """Result of reconfiguring one module update into a fixed plan."""

    module: str
    demand: int
    fits: bool
    wasted_slices: int

    @property
    def requires_refloorplan(self) -> bool:
        """True when the update cannot be loaded (paper: 'unfeasible')."""
        return not self.fits


def plan_partitions(
    design: BlockDesign, grid: DeviceGrid, headroom: float = 1.25
) -> PRPlan:
    """Provision one partition per unique module, sized offline.

    Parameters
    ----------
    design:
        The initial design.
    grid:
        Target device (the plan must fit it).
    headroom:
        Capacity multiplier over each module's initial demand — the
        designer's guess at future growth.

    Raises
    ------
    ValueError
        If the provisioned partitions exceed the device (the PR approach
        cannot even be planned for near-full designs with headroom).
    """
    check_positive(headroom, "headroom")
    partitions: dict[str, Partition] = {}
    for name, module in design.modules.items():
        stats = compute_stats(opt_design(synthesize(module)))
        demand = slice_demand(stats)
        partitions[name] = Partition(
            module=name, capacity_slices=int(demand * headroom) + 1
        )
    plan = PRPlan(partitions=partitions, headroom=headroom)
    counts = design.instance_counts()
    reserved = sum(
        p.capacity_slices * counts[p.module] for p in partitions.values()
    )
    if reserved > grid.device_caps().slices:
        raise ValueError(
            f"PR plan needs {reserved} slices but {grid.name} has "
            f"{grid.device_caps().slices} — cannot provision headroom "
            f"{headroom} for this design"
        )
    return plan


def apply_update(plan: PRPlan, module_stats: NetlistStats) -> UpdateOutcome:
    """Reconfigure an updated module into its fixed partition."""
    name = module_stats.name
    if name not in plan.partitions:
        raise KeyError(f"no partition for module {name!r}")
    demand = slice_demand(module_stats)
    partition = plan.partitions[name]
    fits = partition.fits(demand)
    return UpdateOutcome(
        module=name,
        demand=demand,
        fits=fits,
        wasted_slices=max(0, partition.capacity_slices - demand) if fits else 0,
    )


def refloorplan(
    design: BlockDesign,
    grid: DeviceGrid,
    policy: CFPolicy,
    *,
    sa_params: SAParams | None = None,
    kernel: str = "fast",
    n_seeds: int = 1,
    n_workers: int | None = None,
    preimpl_workers: int | None = None,
    cache: "ModuleCache | None" = None,
    cache_dir: str | None = None,
) -> RWFlowResult:
    """Full re-floorplan after an unfeasible update (the PR failure path).

    When :func:`apply_update` reports ``requires_refloorplan``, the only
    recovery in a fixed-partition system is a complete recompile of the
    updated design — exactly the cost the paper's RW-style flow avoids.
    This delegates to :func:`~repro.flow.rwflow.run_rw_flow`, exposing
    the stitcher kernel and multi-seed restart knobs so the expensive
    recovery can at least use the best placement of several seeds, and
    the pre-implementation cache/worker knobs so the recompile reuses
    every module the update did not touch.
    """
    return run_rw_flow(
        design,
        grid,
        policy,
        sa_params=sa_params,
        kernel=kernel,
        n_seeds=n_seeds,
        n_workers=n_workers,
        preimpl_workers=preimpl_workers,
        cache=cache,
        cache_dir=cache_dir,
    )
