"""Analytic global placement: gradient HPWL descent plus legalization.

:func:`global_place` casts macro placement as continuous optimization
over module "cluster boxes" — the DREAMPlaceFPGA-MP recipe at this
repo's scale, following the ``eval_f`` / ``eval_grad_f`` /
``line_search`` / ``legalize_box`` structure of cgra_pnr's thunder
``GlobalPlacer``:

* **Smooth wirelength** — every inter-block edge is 2-pin, so HPWL is
  ``w * (|dx| + |dy|)`` over box centers; the log-sum-exp smoothing
  ``sabs(d) = gamma * log(exp(d/gamma) + exp(-d/gamma))`` makes it
  differentiable with gradient ``w * tanh(d / gamma)``.
* **Column-aware density** — demand is binned into (device column x
  row band) cells by exact box/cell overlap; each cell's capacity
  comes from :func:`repro.place_kernel.sites.column_capacities`
  (clock-spine columns hold zero), and the penalty is the squared
  overflow ``0.5 * sum(max(0, demand - capacity)^2)``, whose gradient
  pushes boxes out of overfull cells.
* **Backtracking line search** — fixed-iteration gradient descent on
  ``f_wl + lambda_t * f_den`` with Armijo backtracking and a
  geometrically ramped density weight; the density scale is
  auto-balanced against the wirelength gradient at iteration 0, so
  one parameter set serves small fixtures and the cnvW1A1 design
  alike.
* **Legalize-to-column snap** — instances walk the greedy
  tallest-first order; each snaps to the compatible anchor column
  nearest its continuous x and the legal anchor row nearest its
  continuous y, through the move kernels' shared compatible-site
  tables (:meth:`~repro.place_kernel.kernel.PlacementKernel.nearest_fit_y`).
  Leftovers fall to the deterministic first-fit fill.

Budget contract: gradient steps and legalization snaps are *uncharged*
— ``result.iterations`` is 0 and no kernel move counters advance — so
a gp-warm-started anneal's kernel-op spend is exactly its own
``max_iters``.  Determinism: fixed iteration counts (no wall-clock
stopping), a single seeded jitter draw via
:func:`repro.utils.rng.stream`, and pure single-threaded numpy, so
results are bitwise identical across processes and worker counts and
on both move kernels (``tests/test_golden_costs.py`` pins them on
each).

The three phase spans ``gplace.init`` / ``gplace.descent`` /
``gplace.legalize`` tile the ``gplace`` root span, exactly like the
stitcher's phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.device.grid import DeviceGrid
from repro.flow.blockdesign import BlockDesign
from repro.obs.tracer import NullTracer, Tracer, current_tracer
from repro.place.shapes import Footprint
from repro.place_kernel.kernel import KERNELS
from repro.place_kernel.problem import PlacementProblem
from repro.place_kernel.result import StitchResult, StitchStats, converge_history
from repro.place_kernel.route_cost import build_route_model
from repro.place_kernel.sites import column_capacities
from repro.utils.rng import stream

__all__ = ["GPParams", "global_place"]


@dataclass(frozen=True)
class GPParams:
    """Analytic global-placement schedule and objective weights."""

    #: Fixed gradient-descent iteration count (the determinism contract
    #: forbids wall-clock stopping; DET003).
    n_iters: int = 100
    #: Log-sum-exp smoothing width of ``|d|`` in grid units; smaller is
    #: closer to true HPWL but stiffer.
    gamma: float = 2.0
    #: Final density-penalty multiplier (on top of the auto-balanced
    #: base scale); the weight ramps geometrically from 1/25 of this.
    density_weight: float = 4.0
    #: Vertical density bins; cells are (one column) x (height/bands).
    n_bands: int = 10
    #: Target fill fraction per density cell (< 1 leaves legalization
    #: slack).
    target_fill: float = 0.9
    #: Armijo backtracking halvings per line search before the step is
    #: skipped.
    backtracks: int = 12
    #: Armijo sufficient-decrease constant.
    armijo: float = 1e-4
    #: Uniform jitter amplitude (grid units) breaking the symmetry of
    #: the all-at-centroid start; one seeded vectorized draw.
    jitter: float = 0.5
    #: Cost charged per CLB of unplaced block area (same objective as
    #: ``SAParams.unplaced_weight`` — required for comparable costs).
    unplaced_weight: float = 40.0
    seed: int = 0
    #: Weight of the channel-overflow congestion cost term.  The descent
    #: itself stays pure HPWL + density; a nonzero weight makes the
    #: reported ``final_cost`` comparable to a congestion-aware anneal's
    #: (and a gp-warm-started anneal then optimizes the full objective).
    congestion_weight: float = 0.0
    #: Weight of the block-level critical-path cost term (same role).
    timing_weight: float = 0.0


def global_place(
    design: BlockDesign,
    footprints: dict[str, Footprint],
    grid: DeviceGrid,
    params: GPParams | None = None,
    *,
    kernel: str = "fast",
    module_delays: Mapping[str, float] | None = None,
    tracer: Tracer | NullTracer | None = None,
) -> StitchResult:
    """Analytically place all instances of ``design`` on ``grid``.

    Parameters
    ----------
    design, footprints, grid:
        As for :func:`~repro.flow.stitcher.stitch`.
    params:
        Descent schedule and objective weights.
    kernel:
        Move kernel used for the legalization snap (``"fast"`` or
        ``"reference"``); bitwise-identical results on either.
    tracer:
        Where the run's ``gplace`` span tree is recorded; defaults to
        the ambient tracer, with a private throwaway tracer when that
        is disabled so :class:`StitchStats` timings cost the same
        either way.

    Returns
    -------
    StitchResult
        A legal placement in the shared result shape.  ``iterations``
        is 0: gradient steps and legalization snaps are uncharged
        against the kernel-op budget (only a polishing anneal's moves
        count), which is what lets a gp warm start undercut a cold
        anneal's budget.
    """
    params = params or GPParams()
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; choose from {KERNELS}")
    if params.n_iters < 0:
        raise ValueError(f"n_iters must be >= 0, got {params.n_iters}")
    if params.gamma <= 0.0:
        raise ValueError(f"gamma must be > 0, got {params.gamma}")
    if params.n_bands < 1:
        raise ValueError(f"n_bands must be >= 1, got {params.n_bands}")
    ambient = tracer if tracer is not None else current_tracer()
    tr = ambient if ambient.enabled else Tracer()

    # The three phase spans tile the root span (every statement between
    # root entry and exit lives inside exactly one phase), mirroring the
    # stitcher's contract so trace summaries compare directly.
    with tr.span("gplace", kernel=kernel, seed=params.seed) as sp_root:
        with tr.span("gplace.init") as sp_init:
            problem = PlacementProblem.from_design(design, footprints, grid)
            names = problem.names
            route = build_route_model(
                problem,
                congestion_weight=params.congestion_weight,
                timing_weight=params.timing_weight,
                module_delays=module_delays,
            )
            st = problem.make_kernel(kernel, params.unplaced_weight, route)
            n = st.n
            height = float(grid.height_clbs)

            # Movable boxes: instances with at least one compatible site.
            movable = np.array(
                [bool(st.anchors_x[i]) and st.y_max[i] >= 0 for i in range(n)],
                dtype=bool,
            )
            half_w = np.array(
                [st.tables[st.table_of[i]].half_w for i in range(n)]
            )
            half_h = np.array(
                [st.tables[st.table_of[i]].half_h for i in range(n)]
            )
            # Continuous center bounds from the compatible anchor span.
            cx_lo = np.zeros(n)
            cx_hi = np.zeros(n)
            cy_lo = np.zeros(n)
            cy_hi = np.zeros(n)
            for i in range(n):
                if not movable[i]:
                    continue
                xs = st.anchors_x[i]
                cx_lo[i] = xs[0] + half_w[i]
                cx_hi[i] = xs[-1] + half_w[i]
                cy_lo[i] = half_h[i]
                cy_hi[i] = st.y_max[i] + half_h[i]

            # Edges with both endpoints movable drive the descent.
            edges = [
                (a, b, w)
                for a, b, w in problem.edges
                if movable[a] and movable[b]
            ]
            ea = np.fromiter((e[0] for e in edges), dtype=np.intp,
                             count=len(edges))
            eb = np.fromiter((e[1] for e in edges), dtype=np.intp,
                             count=len(edges))
            ew = np.fromiter((e[2] for e in edges), dtype=np.float64,
                             count=len(edges))

            # Density grid: device columns x row bands; capacities from
            # the shared per-column helper, scaled to the band height.
            col_caps = column_capacities(grid)
            band_h = height / params.n_bands
            cell_cap = params.target_fill * np.outer(
                col_caps / params.n_bands, np.ones(params.n_bands)
            )
            widths = 2.0 * half_w
            heights = 2.0 * half_h
            areas = np.array(st.areas, dtype=np.float64)
            sp_init.incr("n_instances", n)
            sp_init.incr("n_movable", int(movable.sum()))
            sp_init.incr("n_edges", len(edges))
            fill = float(areas[movable].sum()) / max(1.0, float(col_caps.sum()))
            sp_init.set_attr("device_fill", round(fill, 4))

            # Start at the anchor-span centroid with a seeded symmetry-
            # breaking jitter (one vectorized draw; fixed consumption).
            rng = stream(params.seed, "gplace", "init")
            jit = rng.uniform(-params.jitter, params.jitter, size=(2, n))
            cx = np.clip((cx_lo + cx_hi) / 2.0 + jit[0], cx_lo, cx_hi)
            cy = np.clip((cy_lo + cy_hi) / 2.0 + jit[1], cy_lo, cy_hi)
            cx[~movable] = 0.0
            cy[~movable] = 0.0

        with tr.span("gplace.descent") as sp_desc:
            mov = movable
            gamma = params.gamma
            cols = np.arange(grid.n_cols, dtype=np.float64)
            bands = np.arange(params.n_bands, dtype=np.float64)

            def wl_terms(px: np.ndarray, py: np.ndarray):
                """Smooth HPWL value and per-edge center deltas."""
                if ea.size == 0:
                    return 0.0, None, None
                dx = px[ea] - px[eb]
                dy = py[ea] - py[eb]
                sabs = gamma * (
                    np.logaddexp(dx / gamma, -dx / gamma)
                    + np.logaddexp(dy / gamma, -dy / gamma)
                )
                return float(np.sum(ew * sabs)), dx, dy

            def overlaps(px: np.ndarray, py: np.ndarray):
                """Exact box/cell overlap fractions (n x cols, n x bands)."""
                left = px - half_w
                right = px + half_w
                xov = np.clip(
                    np.minimum(right[:, None], cols[None, :] + 1.0)
                    - np.maximum(left[:, None], cols[None, :]),
                    0.0, None,
                )
                bot = py - half_h
                top = py + half_h
                yov = np.clip(
                    np.minimum(top[:, None], (bands[None, :] + 1.0) * band_h)
                    - np.maximum(bot[:, None], bands[None, :] * band_h),
                    0.0, None,
                )
                xov[~mov] = 0.0
                yov[~mov] = 0.0
                return xov, yov

            def den_value(px: np.ndarray, py: np.ndarray) -> float:
                xov, yov = overlaps(px, py)
                overflow = np.clip(xov.T @ yov - cell_cap, 0.0, None)
                return 0.5 * float(np.sum(overflow * overflow))

            def objective(px: np.ndarray, py: np.ndarray, lam: float) -> float:
                wl, _dx, _dy = wl_terms(px, py)
                return wl + lam * den_value(px, py)

            def gradients(px: np.ndarray, py: np.ndarray, lam: float):
                gx = np.zeros(n)
                gy = np.zeros(n)
                wl, dx, dy = wl_terms(px, py)
                if dx is not None:
                    tx = ew * np.tanh(dx / gamma)
                    ty = ew * np.tanh(dy / gamma)
                    np.add.at(gx, ea, tx)
                    np.add.at(gx, eb, -tx)
                    np.add.at(gy, ea, ty)
                    np.add.at(gy, eb, -ty)
                xov, yov = overlaps(px, py)
                overflow = np.clip(xov.T @ yov - cell_cap, 0.0, None)
                f_den = 0.5 * float(np.sum(overflow * overflow))
                if lam > 0.0 and f_den > 0.0:
                    # d(xov)/d(cx) is +-1 where the box edge lies inside
                    # the cell; interior fully-covered cells contribute 0.
                    left = px - half_w
                    right = px + half_w
                    live_x = xov > 0.0
                    dxov = (
                        (right[:, None] < cols[None, :] + 1.0).astype(float)
                        - (left[:, None] > cols[None, :]).astype(float)
                    ) * live_x
                    bot = py - half_h
                    top = py + half_h
                    live_y = yov > 0.0
                    dyov = (
                        (top[:, None] < (bands[None, :] + 1.0) * band_h)
                        .astype(float)
                        - (bot[:, None] > bands[None, :] * band_h)
                        .astype(float)
                    ) * live_y
                    gx += lam * np.einsum(
                        "ic,cb,ib->i", dxov, overflow, yov
                    )
                    gy += lam * np.einsum(
                        "ic,cb,ib->i", xov, overflow, dyov
                    )
                gx[~mov] = 0.0
                gy[~mov] = 0.0
                return wl + lam * f_den, gx, gy

            # Auto-balance the density scale against the wirelength
            # gradient at the start (DREAMPlace's weight initialization),
            # then ramp it geometrically: early iterations untangle
            # wirelength, late iterations resolve overlap.
            _f0, gx_wl, gy_wl = gradients(cx, cy, 0.0)
            xov0, yov0 = overlaps(cx, cy)
            ov0 = np.clip(xov0.T @ yov0 - cell_cap, 0.0, None)
            gd0 = np.einsum("ic,cb,ib->i", np.sign(xov0), ov0, yov0)
            wl_norm = float(np.abs(gx_wl).sum() + np.abs(gy_wl).sum())
            den_norm = float(np.abs(gd0).sum())
            lam_base = params.density_weight * (
                (wl_norm + 1.0) / (den_norm + 1.0)
            )
            span = float(grid.n_cols) + height
            step = 0.0
            traj: list[tuple[int, float]] = []
            for t in range(params.n_iters):
                ramp = 25.0 ** (
                    (t + 1) / params.n_iters - 1.0
                )  # 1/25 -> 1 geometric
                lam = lam_base * ramp
                f, gx, gy = gradients(cx, cy, lam)
                gnorm2 = float(gx @ gx + gy @ gy)
                if gnorm2 <= 1e-18:
                    traj.append((t, f))
                    continue
                gmax = max(float(np.max(np.abs(gx))),
                           float(np.max(np.abs(gy))))
                # First step moves the steepest box ~5% of the device
                # span; later searches start from twice the last
                # accepted step (classic grow/backtrack).
                cap = 0.05 * span / max(gmax, 1e-12)
                alpha = min(cap, step * 2.0) if step > 0.0 else cap
                accepted = False
                for _k in range(params.backtracks):
                    nx = np.clip(cx - alpha * gx, cx_lo, cx_hi)
                    ny = np.clip(cy - alpha * gy, cy_lo, cy_hi)
                    if objective(nx, ny, lam) <= f - params.armijo * alpha * gnorm2:
                        accepted = True
                        break
                    alpha *= 0.5
                if accepted:
                    cx, cy = nx, ny
                    step = alpha
                traj.append((t, f))
            sp_desc.incr("gd_iters", params.n_iters)
            if traj:
                sp_desc.set_attr("f_initial", round(traj[0][1], 3))
                sp_desc.set_attr("f_final", round(traj[-1][1], 3))

        with tr.span("gplace.legalize") as sp_leg:
            # Snap in the greedy tallest-first order so big blocks claim
            # space before small ones fragment it; each instance takes
            # the compatible column nearest its continuous x (ties
            # toward the left) and the legal row nearest its continuous
            # y.  Snaps are uncharged: no kernel move counters advance.
            n_snapped = 0
            for i in st.greedy_order():
                if not movable[i]:
                    continue
                xs = st.anchors_x[i]
                tx = cx[i] - half_w[i]
                ty = int(round(cy[i] - half_h[i]))
                for x in sorted(xs, key=lambda a: (abs(a - tx), a)):
                    y = st.nearest_fit_y(i, x, ty)
                    if y is not None:
                        st.set_pos(i, (x, y))
                        st.paint(i, x, y, +1)
                        n_snapped += 1
                        break
            st.first_fit_fill()
            wirelength = st.wirelength()
            final_cost = st.total_cost()
            congestion_cost = st.congestion_cost()
            timing_cost = st.timing_cost()
            occupancy = st.occupancy_array()
            placements = {names[i]: st.pos[i] for i in range(n)}
            n_placed = sum(1 for p in st.pos if p is not None)
            history, converged_at = converge_history(
                [(0, final_cost)], final_cost, 0
            )
            sp_leg.incr("n_snapped", n_snapped)
            sp_leg.incr("n_placed", n_placed)

        sp_root.set_attr("n_placed", n_placed)
        sp_root.set_attr("n_unplaced", n - n_placed)
        sp_root.set_attr("final_cost", final_cost)
        if route is not None:
            sp_root.set_attr("cost.congestion", congestion_cost)
            sp_root.set_attr("cost.timing", timing_cost)

    stats = StitchStats(
        kernel=kernel,
        seed=params.seed,
        setup_s=0.0,
        initial_s=sp_init.dur_s,
        anneal_s=sp_desc.dur_s,
        fill_s=sp_leg.dur_s,
        move_attempts=0,
        place_attempts=0,
        swap_attempts=0,
        move_accepts=0,
        place_accepts=0,
        swap_accepts=0,
        illegal_moves=0,
        # The descent trajectory rides the trace slot the SA schedule
        # uses: (iteration, smooth objective) per gradient step.
        temperature_trace=tuple(traj),
    )
    return StitchResult(
        placements=placements,
        n_placed=n_placed,
        n_unplaced=n - n_placed,
        wirelength=wirelength,
        final_cost=final_cost,
        iterations=0,
        converged_at=converged_at,
        illegal_moves=0,
        history=history,
        occupancy=occupancy,
        stats=stats,
        congestion_cost=congestion_cost,
        timing_cost=timing_cost,
    )
