"""Simulated-annealing stitcher (RapidWright's global macro placer).

Places every pre-implemented block instance on the device, relocating each
only to x-positions whose column-kind pattern matches its footprint
(paper §IV).  The SA cost is inter-block half-perimeter wirelength plus a
penalty per unplaced block; overlapping candidates are *illegal moves*,
which the paper ties directly to footprint irregularity: ragged skylines
collide more, slowing convergence and inflating the final cost (§VIII:
the estimator's tighter, more rectangular footprints converge 1.37x
faster with 40% lower cost than constant CF = 1.68).

The geometry/cost primitives live in :mod:`repro.place_kernel`: two
interchangeable move kernels (``"fast"`` bitmask/vectorized and
``"reference"``, the executable specification) drive one shared driver
loop here.  Both kernels draw from the same batched uniform stream, so a
fixed seed produces identical placements, costs and history on either
kernel — enforced by ``tests/test_stitcher_equivalence.py`` and pinned
by the golden costs in ``tests/test_golden_costs.py``.  The same kernel
also powers the GA placer (:mod:`repro.flow.evolve`), which is what
makes SA-vs-GA costs directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.device.grid import DeviceGrid
from repro.flow.blockdesign import BlockDesign
from repro.obs.tracer import NullTracer, Tracer, current_tracer
from repro.place.shapes import Footprint
from repro.place_kernel.kernel import KERNELS, run_move_batch
from repro.place_kernel.problem import PlacementProblem
from repro.place_kernel.result import StitchResult, StitchStats, converge_history
from repro.place_kernel.route_cost import build_route_model
from repro.place_kernel.uniform import UniformBuffer

__all__ = ["KERNELS", "SAParams", "StitchResult", "StitchStats", "stitch"]


@dataclass(frozen=True)
class SAParams:
    """Annealing schedule and move mix."""

    max_iters: int = 60000
    steps_per_temp: int = 250
    alpha: float = 0.95
    patience: int = 6000
    #: Cost charged per CLB of unplaced block area (drives the placer to
    #: place everything it can before polishing wirelength).
    unplaced_weight: float = 40.0
    #: Probability of attempting to place an unplaced block per move.
    p_place: float = 0.15
    #: Probability of a same-module swap per move.
    p_swap: float = 0.15
    seed: int = 0
    #: Weight of the channel-overflow congestion cost term; 0.0 keeps
    #: the pure HPWL objective (and the goldens) byte-identical.
    congestion_weight: float = 0.0
    #: Weight of the block-level critical-path cost term; 0.0 disables.
    timing_weight: float = 0.0


def stitch(
    design: BlockDesign,
    footprints: dict[str, Footprint],
    grid: DeviceGrid,
    params: SAParams | None = None,
    *,
    kernel: str = "fast",
    initial_placements: Mapping[str, tuple[int, int] | None] | None = None,
    module_delays: Mapping[str, float] | None = None,
    tracer: Tracer | NullTracer | None = None,
) -> StitchResult:
    """Place all instances of ``design`` on ``grid``.

    Parameters
    ----------
    design:
        The block design (instances + connectivity).
    footprints:
        Per *module* footprint from pre-implementation; every instance of
        a module reuses the same relocatable footprint.
    grid:
        Target device.
    params:
        Annealing parameters.
    kernel:
        ``"fast"`` (bitmask occupancy, cached centers, vectorized sums)
        or ``"reference"`` (the straightforward implementation).  Both
        produce identical results for a fixed seed.
    initial_placements:
        Optional warm start: anchor per instance name (``None`` entries
        and missing names stay unplaced).  Anchors are applied in
        instance order; an anchor that no longer fits (or overlaps an
        earlier one) leaves that instance unplaced rather than failing.
        Without it the anneal starts from the greedy tallest-first
        packing, exactly as before.
    module_delays:
        Per-module intra-block delays in ns seeding the timing cost
        term (each pre-implemented module's ``TimingReport.total_ns``);
        ignored unless ``params.timing_weight`` is nonzero.
    tracer:
        Where the run's ``stitch`` span tree is recorded; defaults to
        the ambient tracer.  When the ambient tracer is disabled the run
        records into a private throwaway tracer — :class:`StitchStats`
        is a view over those spans, so the timing cost is identical
        either way (a handful of phase-boundary clock reads).

    Returns
    -------
    StitchResult
        Placement, cost and convergence metrics, plus :class:`StitchStats`
        instrumentation.
    """
    params = params or SAParams()
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; choose from {KERNELS}")
    ambient = tracer if tracer is not None else current_tracer()
    tr = ambient if ambient.enabled else Tracer()

    # The four phase spans tile the root span: every statement between
    # root entry and exit lives inside exactly one phase, so the phase
    # durations sum to the run's wall time (pinned by
    # tests/test_stitcher.py::test_phase_timings_tile_wall_time).
    with tr.span("stitch", kernel=kernel, seed=params.seed) as sp_root:
        with tr.span("stitch.setup") as sp_setup:
            problem = PlacementProblem.from_design(design, footprints, grid)
            names = problem.names
            route = build_route_model(
                problem,
                congestion_weight=params.congestion_weight,
                timing_weight=params.timing_weight,
                module_delays=module_delays,
            )
            st = problem.make_kernel(kernel, params.unplaced_weight, route)
            swappable = problem.swappable
            edges = problem.edges

        with tr.span("stitch.initial") as sp_initial:
            if initial_placements is None:
                st.greedy_initial()
            else:
                st.load_placements(names, initial_placements)
            cost = st.total_cost()
            best = cost
            improvements: list[tuple[int, float]] = [(0, best)]
            last_improve = 0
            # Initial temperature: accept ~half of typical uphill deltas.
            temp = max(1.0, 0.05 * cost / max(1, len(edges)))
            u = UniformBuffer(
                np.random.default_rng(params.seed),
                block=max(256, min(8192, 4 * params.steps_per_temp)),
            )
            # Placed/unplaced membership only changes on successful place
            # moves, so the candidate lists are maintained incrementally.
            placed_list = [i for i in range(st.n) if st.pos[i] is not None]
            unplaced_list = [i for i in range(st.n) if st.pos[i] is None]

        with tr.span("stitch.anneal") as sp_anneal:
            temp_trace: list[tuple[int, float]] = []
            it = 0
            while it < params.max_iters:
                steps = min(params.steps_per_temp, params.max_iters - it)
                cost, best, events = run_move_batch(
                    st, swappable, placed_list, unplaced_list,
                    steps, temp, params.p_place, params.p_swap, u, cost, best,
                )
                for off, c in events:
                    improvements.append((it + off, c))
                if events:
                    last_improve = it + events[-1][0]
                it += steps
                temp_trace.append((it, temp))
                temp *= params.alpha
                if it - last_improve > params.patience:
                    break

        with tr.span("stitch.fill") as sp_fill:
            st.first_fit_fill()
            # Finalization is charged to the fill phase so the phases
            # keep tiling the run: the convergence scan and the final
            # cost/occupancy extraction used to fall outside every
            # phase, making the recorded phases sum short of the wall
            # time.  The convergence threshold is anchored at the true
            # post-fill final cost (converge_history appends a terminal
            # history event when the fill changed the cost).
            wirelength = st.wirelength()
            final_cost = st.total_cost()
            congestion_cost = st.congestion_cost()
            timing_cost = st.timing_cost()
            history, converged_at = converge_history(
                improvements, final_cost, it
            )
            occupancy = st.occupancy_array()
            placements = {names[i]: st.pos[i] for i in range(st.n)}
            n_placed = sum(1 for p in st.pos if p is not None)

        # Move-mix counters mirror StitchStats exactly; attrs record the
        # run's deterministic outcome for `repro trace summarize`.
        sp_anneal.incr("iterations", it)
        sp_anneal.incr("move_attempts", st.move_attempts)
        sp_anneal.incr("place_attempts", st.place_attempts)
        sp_anneal.incr("swap_attempts", st.swap_attempts)
        sp_anneal.incr("move_accepts", st.move_accepts)
        sp_anneal.incr("place_accepts", st.place_accepts)
        sp_anneal.incr("swap_accepts", st.swap_accepts)
        sp_anneal.incr("illegal_moves", st.illegal)
        sp_initial.incr("n_placed_initial", len(placed_list))
        sp_setup.incr("n_instances", st.n)
        sp_setup.incr("n_edges", len(edges))
        sp_fill.incr("n_placed", n_placed)
        sp_root.set_attr("n_placed", n_placed)
        sp_root.set_attr("n_unplaced", st.n - n_placed)
        sp_root.set_attr("final_cost", final_cost)
        sp_root.set_attr("converged_at", converged_at)
        if route is not None:
            sp_root.set_attr("cost.congestion", congestion_cost)
            sp_root.set_attr("cost.timing", timing_cost)

    stats = StitchStats(
        kernel=kernel,
        seed=params.seed,
        setup_s=sp_setup.dur_s,
        initial_s=sp_initial.dur_s,
        anneal_s=sp_anneal.dur_s,
        fill_s=sp_fill.dur_s,
        move_attempts=st.move_attempts,
        place_attempts=st.place_attempts,
        swap_attempts=st.swap_attempts,
        move_accepts=st.move_accepts,
        place_accepts=st.place_accepts,
        swap_accepts=st.swap_accepts,
        illegal_moves=st.illegal,
        temperature_trace=tuple(temp_trace),
    )
    return StitchResult(
        placements=placements,
        n_placed=n_placed,
        n_unplaced=st.n - n_placed,
        wirelength=wirelength,
        final_cost=final_cost,
        iterations=it,
        converged_at=converged_at,
        illegal_moves=st.illegal,
        history=history,
        occupancy=occupancy,
        stats=stats,
        congestion_cost=congestion_cost,
        timing_cost=timing_cost,
    )
