"""Simulated-annealing stitcher (RapidWright's global macro placer).

Places every pre-implemented block instance on the device, relocating each
only to x-positions whose column-kind pattern matches its footprint
(paper §IV).  The SA cost is inter-block half-perimeter wirelength plus a
penalty per unplaced block; overlapping candidates are *illegal moves*,
which the paper ties directly to footprint irregularity: ragged skylines
collide more, slowing convergence and inflating the final cost (§VIII:
the estimator's tighter, more rectangular footprints converge 1.37x
faster with 40% lower cost than constant CF = 1.68).

Two interchangeable kernels implement the geometry/cost primitives under
one shared driver loop:

* ``kernel="fast"`` (default) — per-column occupancy bitmasks stored as
  Python big-ints (an overlap probe is one shift+AND per column, and the
  greedy packer finds the lowest legal row with a logarithmic bit
  dilation instead of a row scan), per-footprint compatible-site tables
  shared by every instance of a module, incrementally cached instance
  centers, and flat numpy edge-endpoint arrays so whole-design cost
  sums are single vectorized gathers.
* ``kernel="reference"`` — the original straightforward implementation
  (numpy occupancy slicing, per-edge Python sums).  Kept forever as the
  executable specification that the fast kernel is tested against.

Both kernels draw from the same batched uniform stream (one
``Generator.random(block)`` call amortizes the per-draw RNG overhead),
so a fixed seed produces identical placements, costs and history on
either kernel — enforced by ``tests/test_stitcher_equivalence.py``.
With the integer edge widths ``BlockDesign`` produces, every HPWL term
is a dyadic rational that float64 evaluates exactly in any summation
order, which is what makes the equivalence bitwise rather than
approximate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.device.column import ColumnKind
from repro.device.grid import DeviceGrid
from repro.flow.blockdesign import BlockDesign
from repro.obs.tracer import NullTracer, Tracer, current_tracer
from repro.place.shapes import Footprint

__all__ = ["KERNELS", "SAParams", "StitchResult", "StitchStats", "stitch"]

_HARD_KINDS = (ColumnKind.BRAM, ColumnKind.DSP)
_HARD_PITCH = 5  # CLB rows per BRAM/DSP site

#: Selectable move-kernel implementations.
KERNELS = ("fast", "reference")


@dataclass(frozen=True)
class SAParams:
    """Annealing schedule and move mix."""

    max_iters: int = 60000
    steps_per_temp: int = 250
    alpha: float = 0.95
    patience: int = 6000
    #: Cost charged per CLB of unplaced block area (drives the placer to
    #: place everything it can before polishing wirelength).
    unplaced_weight: float = 40.0
    #: Probability of attempting to place an unplaced block per move.
    p_place: float = 0.15
    #: Probability of a same-module swap per move.
    p_swap: float = 0.15
    seed: int = 0


@dataclass(frozen=True)
class StitchStats:
    """Instrumentation of one stitching run.

    A thin view over the run's trace: each timing is the duration of the
    matching ``stitch.*`` span (monotonic, :func:`time.perf_counter`
    based), and the four phases *tile* the run — ``fill_s`` includes the
    post-anneal finalization (deterministic fill, convergence scan,
    final cost/occupancy extraction), so ``total_s`` equals the wall
    time of the whole :func:`stitch` call.  Counters split the move mix
    into attempts and acceptances and mirror the ``stitch.anneal``
    span's counters.  All counters are deterministic for a fixed seed;
    the timings are not, so the whole object is excluded from
    :class:`StitchResult` equality.
    """

    kernel: str
    seed: int
    setup_s: float
    initial_s: float
    anneal_s: float
    fill_s: float
    move_attempts: int
    place_attempts: int
    swap_attempts: int
    move_accepts: int
    place_accepts: int
    swap_accepts: int
    illegal_moves: int
    #: ``(iteration, temperature)`` at the end of each temperature step.
    temperature_trace: tuple[tuple[int, float], ...] = ()

    @property
    def total_s(self) -> float:
        """Wall-clock total across all phases."""
        return self.setup_s + self.initial_s + self.anneal_s + self.fill_s

    @property
    def accept_rate(self) -> float:
        """Accepted fraction over all attempted moves."""
        attempts = self.move_attempts + self.place_attempts + self.swap_attempts
        accepts = self.move_accepts + self.place_accepts + self.swap_accepts
        return accepts / attempts if attempts else 0.0


@dataclass(frozen=True)
class StitchResult:
    """Outcome of one stitching run.

    Attributes
    ----------
    placements:
        Anchor ``(x, y)`` per instance, or ``None`` if unplaced.
    n_placed, n_unplaced:
        Placement counts (Fig. 5's headline metric).
    wirelength:
        Final weighted HPWL over inter-block edges.
    final_cost:
        Wirelength plus unplaced penalties (the SA objective).
    iterations:
        Total SA iterations executed.
    converged_at:
        Iteration at which the SA first came within 1% of its final cost
        (the paper's convergence-speed metric compares this across CF
        policies; footprint irregularity slows the descent).
    illegal_moves:
        Rejected-by-overlap move count.
    history:
        Best-cost trajectory as ``(iteration, cost)`` improvement points.
    occupancy:
        Final occupancy grid (columns x CLB rows), for rendering.
    stats:
        Per-phase timings, move counters and the temperature trace.
    """

    placements: dict[str, tuple[int, int] | None]
    n_placed: int
    n_unplaced: int
    wirelength: float
    final_cost: float
    iterations: int
    converged_at: int
    illegal_moves: int
    history: tuple[tuple[int, float], ...] = field(
        compare=False, repr=False, default=()
    )
    occupancy: np.ndarray | None = field(compare=False, repr=False, default=None)
    stats: StitchStats | None = field(compare=False, repr=False, default=None)

    def iters_to_cost(self, target: float) -> int | None:
        """First iteration whose best cost is <= ``target``.

        The time-to-target metric annealing comparisons use: how fast one
        run reaches the quality another run ends at.  ``None`` if the run
        never got there.
        """
        for it, c in self.history:
            if c <= target + 1e-9:
                return it
        return None

    def render(self, max_width: int = 100) -> str:
        """ASCII view of the occupancy (Fig. 5 / Fig. 13 style)."""
        occ = self.occupancy
        if occ is None:
            return "<no occupancy recorded>"
        cols, rows = occ.shape
        step = max(1, math.ceil(cols / max_width))
        lines = []
        for y in range(rows - 1, -1, -max(1, rows // 40)):
            line = "".join(
                "#" if occ[x : x + step, y].any() else "."
                for x in range(0, cols, step)
            )
            lines.append(line)
        return "\n".join(lines)


class _UniformBuffer:
    """Uniform [0, 1) draws, batched into one RNG call per block.

    Every random decision in the driver and the move kernel goes through
    this buffer, so both kernels consume the exact same stream for a
    given seed (the precondition for fast-vs-reference equivalence).
    """

    __slots__ = ("_rng", "_block", "_buf", "_i")

    def __init__(self, rng: np.random.Generator, block: int) -> None:
        self._rng = rng
        self._block = block
        self._buf = rng.random(block).tolist()
        self._i = 0

    def next(self) -> float:
        i = self._i
        buf = self._buf
        if i >= len(buf):
            self._buf = buf = self._rng.random(self._block).tolist()
            i = 0
        self._i = i + 1
        return buf[i]

    def index(self, n: int) -> int:
        """One draw mapped to ``{0, ..., n-1}``."""
        k = int(self.next() * n)
        return n - 1 if k >= n else k


def _dilate_down(mask: int, h: int) -> int:
    """OR of ``mask >> k`` for ``k`` in ``[0, h)`` (logarithmic doubling).

    Bit ``y`` of the result is set iff ``mask`` has any bit in
    ``[y, y + h)`` — i.e. the set of anchor rows a column of height ``h``
    collides at.
    """
    out = mask
    covered = 1
    while covered < h:
        s = min(covered, h - covered)
        out |= out >> s
        covered += s
    return out


class _SiteTable:
    """Compatible-site table of one unique (trimmed) footprint.

    Shared by every instance of the same module, so a design with heavy
    reuse (cnvW1A1: 175 instances / 74 modules) builds each table once.
    """

    __slots__ = (
        "footprint",
        "anchors_x",
        "y_step",
        "y_max",
        "n_y",
        "area",
        "max_height",
        "half_w",
        "half_h",
        "heights_arr",
        "masks",
        "allowed_mask",
    )

    def __init__(self, grid: DeviceGrid, fp: Footprint) -> None:
        self.footprint = fp
        self.anchors_x = grid.compatible_x_anchors(fp.col_kinds)
        self.y_step = (
            _HARD_PITCH if any(k in _HARD_KINDS for k in fp.col_kinds) else 1
        )
        self.y_max = grid.height_clbs - fp.max_height
        self.n_y = self.y_max // self.y_step + 1 if self.y_max >= 0 else 0
        self.area = fp.occupied_clbs
        self.max_height = fp.max_height
        self.half_w = fp.width / 2.0
        self.half_h = fp.max_height / 2.0
        self.heights_arr = fp.heights_array()
        self.masks = tuple(
            (c, (1 << int(h)) - 1, int(h))
            for c, h in enumerate(fp.heights)
            if h
        )
        allowed = 0
        if self.y_max >= 0:
            if self.y_step == 1:
                allowed = (1 << (self.y_max + 1)) - 1
            else:
                for y in range(0, self.y_max + 1, self.y_step):
                    allowed |= 1 << y
        self.allowed_mask = allowed


class _KernelBase:
    """Shared state and move logic of one annealing run.

    Subclasses provide the geometry/cost primitives (``fits``, ``paint``,
    ``set_pos``, ``incident_cost``, ``wirelength``, ``lowest_fit_y``,
    ``occupancy_array``); everything that touches the random stream or
    decides moves lives here, once, so both kernels behave identically.
    """

    name = "?"

    def __init__(
        self,
        grid: DeviceGrid,
        names: list[str],
        footprints: list[Footprint],
        edges: list[tuple[int, int, int]],
        params: SAParams,
    ) -> None:
        self.grid = grid
        self.names = names
        self.fps = footprints
        self.edges = edges
        self.params = params
        self.n = len(names)
        # Per-footprint site tables, shared across same-module instances.
        table_index: dict[Footprint, int] = {}
        self.tables: list[_SiteTable] = []
        self.table_of: list[int] = []
        for fp in footprints:
            idx = table_index.get(fp)
            if idx is None:
                idx = len(self.tables)
                table_index[fp] = idx
                self.tables.append(_SiteTable(grid, fp))
            self.table_of.append(idx)
        self.anchors_x = [self.tables[t].anchors_x for t in self.table_of]
        self.y_step = [self.tables[t].y_step for t in self.table_of]
        self.y_max = [self.tables[t].y_max for t in self.table_of]
        self.n_y = [self.tables[t].n_y for t in self.table_of]
        self.areas = [self.tables[t].area for t in self.table_of]
        self.pos: list[tuple[int, int] | None] = [None] * self.n
        # Incident edges per instance for O(deg) cost deltas.
        self.incident: list[list[int]] = [[] for _ in range(self.n)]
        for ei, (a, b, _w) in enumerate(edges):
            self.incident[a].append(ei)
            self.incident[b].append(ei)
        self.illegal = 0
        self.move_attempts = 0
        self.place_attempts = 0
        self.swap_attempts = 0
        self.move_accepts = 0
        self.place_accepts = 0
        self.swap_accepts = 0

    # ------------------------------------------------------------ primitives

    def fits(self, i: int, x: int, y: int) -> bool:
        raise NotImplementedError

    def paint(self, i: int, x: int, y: int, delta: int) -> None:
        raise NotImplementedError

    def set_pos(self, i: int, p: tuple[int, int] | None) -> None:
        self.pos[i] = p

    def incident_cost(self, i: int) -> float:
        raise NotImplementedError

    def wirelength(self) -> float:
        raise NotImplementedError

    def lowest_fit_y(self, i: int, x: int, bound: int | None = None) -> int | None:
        """Lowest legal anchor row for ``i`` in column ``x``.

        Rows at or above ``bound`` are rejected (the greedy packer's
        cannot-beat-the-best pruning).
        """
        raise NotImplementedError

    def occupancy_array(self) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------ cost

    def total_cost(self) -> float:
        pen = self.params.unplaced_weight * sum(
            self.areas[i] for i in range(self.n) if self.pos[i] is None
        )
        return self.wirelength() + pen

    # ------------------------------------------------------------ initial

    def greedy_initial(self) -> None:
        """Tallest-first best-fit packing.

        For each block, all compatible x anchors are scanned and the
        globally lowest fitting position is taken, which keeps the
        skyline level — the classic strip-packing heuristic.  Blocks are
        ordered by height, then area, so tall blocks claim full columns
        before shorter ones fragment them.
        """
        order = sorted(
            range(self.n),
            key=lambda i: (-self.tables[self.table_of[i]].max_height, -self.areas[i]),
        )
        for i in order:
            best: tuple[int, int] | None = None
            for x in self.anchors_x[i]:
                y = self.lowest_fit_y(i, x, None if best is None else best[1])
                if y is not None and (best is None or y < best[1]):
                    best = (x, y)
            if best is not None:
                self.set_pos(i, best)
                self.paint(i, best[0], best[1], +1)

    def first_fit_fill(self) -> None:
        """Deterministic first-fit of any block SA left unplaced (the
        random place moves only sample a few sites per attempt)."""
        for i in range(self.n):
            if self.pos[i] is not None:
                continue
            for x in self.anchors_x[i]:
                y = self.lowest_fit_y(i, x)
                if y is not None:
                    self.set_pos(i, (x, y))
                    self.paint(i, x, y, +1)
                    break

    # ------------------------------------------------------------ moves

    def random_site(self, i: int, u: _UniformBuffer) -> tuple[int, int] | None:
        xs = self.anchors_x[i]
        if not xs or self.y_max[i] < 0:
            return None
        x = xs[u.index(len(xs))]
        y = u.index(self.n_y[i]) * self.y_step[i]
        return x, y

    def try_move(self, i: int, temp: float, u: _UniformBuffer) -> float:
        """Relocate instance ``i``; returns the accepted cost delta."""
        self.move_attempts += 1
        site = self.random_site(i, u)
        if site is None:
            return 0.0
        old = self.pos[i]
        assert old is not None
        self.paint(i, old[0], old[1], -1)
        x, y = site
        if not self.fits(i, x, y):
            self.paint(i, old[0], old[1], +1)
            self.illegal += 1
            return 0.0
        before = self.incident_cost(i)
        self.set_pos(i, (x, y))
        after = self.incident_cost(i)
        delta = after - before
        if delta <= 0 or u.next() < math.exp(-delta / max(temp, 1e-9)):
            self.paint(i, x, y, +1)
            self.move_accepts += 1
            return delta
        self.set_pos(i, old)
        self.paint(i, old[0], old[1], +1)
        return 0.0

    def try_place(self, i: int, u: _UniformBuffer) -> float:
        """Attempt to place an unplaced instance (always beneficial)."""
        self.place_attempts += 1
        for _ in range(8):
            site = self.random_site(i, u)
            if site is None:
                return 0.0
            x, y = site
            if self.fits(i, x, y):
                self.set_pos(i, (x, y))
                self.paint(i, x, y, +1)
                self.place_accepts += 1
                gain = self.incident_cost(i) - self.params.unplaced_weight * self.areas[i]
                return gain
            self.illegal += 1
        return 0.0

    def try_swap(self, i: int, j: int, temp: float, u: _UniformBuffer) -> float:
        """Swap two placed instances with identical footprints."""
        self.swap_attempts += 1
        pi, pj = self.pos[i], self.pos[j]
        if pi is None or pj is None or pi == pj:
            return 0.0
        before = self.incident_cost(i) + self.incident_cost(j)
        self.set_pos(i, pj)
        self.set_pos(j, pi)
        after = self.incident_cost(i) + self.incident_cost(j)
        delta = after - before
        if delta <= 0 or u.next() < math.exp(-delta / max(temp, 1e-9)):
            self.swap_accepts += 1
            return delta  # identical footprints: occupancy is unchanged
        self.set_pos(i, pi)
        self.set_pos(j, pj)
        return 0.0


class _ReferenceKernel(_KernelBase):
    """The original straightforward primitives (executable specification)."""

    name = "reference"

    def __init__(self, grid, names, footprints, edges, params) -> None:
        super().__init__(grid, names, footprints, edges, params)
        self.occ = np.zeros((grid.n_cols, grid.height_clbs), dtype=np.int16)
        self.heights = [self.tables[t].heights_arr for t in self.table_of]

    # ------------------------------------------------------------ geometry

    def fits(self, i: int, x: int, y: int) -> bool:
        hs = self.heights[i]
        occ = self.occ
        for c in range(hs.shape[0]):
            h = hs[c]
            if h and occ[x + c, y : y + h].any():
                return False
        return True

    def paint(self, i: int, x: int, y: int, delta: int) -> None:
        hs = self.heights[i]
        for c in range(hs.shape[0]):
            h = hs[c]
            if h:
                self.occ[x + c, y : y + h] += delta

    def lowest_fit_y(self, i: int, x: int, bound: int | None = None) -> int | None:
        for y in range(0, self.y_max[i] + 1, self.y_step[i]):
            if bound is not None and y >= bound:
                return None
            if self.fits(i, x, y):
                return y
        return None

    def occupancy_array(self) -> np.ndarray:
        return self.occ.copy()

    # ------------------------------------------------------------ cost

    def center(self, i: int) -> tuple[float, float]:
        p = self.pos[i]
        assert p is not None
        fp = self.fps[i]
        return (p[0] + fp.width / 2.0, p[1] + fp.max_height / 2.0)

    def edge_cost(self, ei: int) -> float:
        a, b, w = self.edges[ei]
        if self.pos[a] is None or self.pos[b] is None:
            return 0.0
        ax, ay = self.center(a)
        bx, by = self.center(b)
        return w * (abs(ax - bx) + abs(ay - by))

    def incident_cost(self, i: int) -> float:
        return sum(self.edge_cost(ei) for ei in self.incident[i])

    def wirelength(self) -> float:
        return sum(self.edge_cost(ei) for ei in range(len(self.edges)))


class _FastKernel(_KernelBase):
    """Bitmask/cached-center primitives (the default move kernel)."""

    name = "fast"

    def __init__(self, grid, names, footprints, edges, params) -> None:
        super().__init__(grid, names, footprints, edges, params)
        # Occupancy as one big-int bitmask per column: bit y set means CLB
        # row y is occupied.  fits() is then a shift+AND per column.
        self.colmask = [0] * grid.n_cols
        self.masks = [self.tables[t].masks for t in self.table_of]
        self.half_w = [self.tables[t].half_w for t in self.table_of]
        self.half_h = [self.tables[t].half_h for t in self.table_of]
        # Cached centers, maintained by set_pos: python lists for the
        # scalar per-move path, numpy arrays for the vectorized gathers.
        self.cx = [0.0] * self.n
        self.cy = [0.0] * self.n
        self.cxa = np.zeros(self.n, dtype=np.float64)
        self.cya = np.zeros(self.n, dtype=np.float64)
        self.placed_arr = np.zeros(self.n, dtype=bool)
        # Flat edge endpoints for vectorized whole-design cost sums.
        self.ea = np.fromiter((e[0] for e in edges), dtype=np.intp, count=len(edges))
        self.eb = np.fromiter((e[1] for e in edges), dtype=np.intp, count=len(edges))
        self.ew = np.fromiter((e[2] for e in edges), dtype=np.float64, count=len(edges))
        # Neighbor lists (other endpoint, weight) per instance; nodes with
        # many incident edges also get index arrays for a gathered sum.
        self.nbrs: list[list[tuple[int, int]]] = [[] for _ in range(self.n)]
        for a, b, w in edges:
            self.nbrs[a].append((b, w))
            self.nbrs[b].append((a, w))
        self.nbr_idx: list[np.ndarray | None] = [None] * self.n
        self.nbr_w: list[np.ndarray | None] = [None] * self.n
        for i, nb in enumerate(self.nbrs):
            if len(nb) >= _GATHER_DEGREE:
                self.nbr_idx[i] = np.fromiter(
                    (o for o, _ in nb), dtype=np.intp, count=len(nb)
                )
                self.nbr_w[i] = np.fromiter(
                    (w for _, w in nb), dtype=np.float64, count=len(nb)
                )

    # ------------------------------------------------------------ geometry

    def fits(self, i: int, x: int, y: int) -> bool:
        cm = self.colmask
        for c, m, _h in self.masks[i]:
            if cm[x + c] & (m << y):
                return False
        return True

    def paint(self, i: int, x: int, y: int, delta: int) -> None:
        cm = self.colmask
        if delta > 0:
            for c, m, _h in self.masks[i]:
                cm[x + c] |= m << y
        else:
            for c, m, _h in self.masks[i]:
                cm[x + c] &= ~(m << y)

    def set_pos(self, i: int, p: tuple[int, int] | None) -> None:
        self.pos[i] = p
        if p is None:
            self.placed_arr[i] = False
        else:
            cx = p[0] + self.half_w[i]
            cy = p[1] + self.half_h[i]
            self.cx[i] = cx
            self.cy[i] = cy
            self.cxa[i] = cx
            self.cya[i] = cy
            self.placed_arr[i] = True

    def lowest_fit_y(self, i: int, x: int, bound: int | None = None) -> int | None:
        t = self.tables[self.table_of[i]]
        allowed = t.allowed_mask
        if not allowed:
            return None
        bad = 0
        cm = self.colmask
        for c, _m, h in self.masks[i]:
            col = cm[x + c]
            if col:
                bad |= _dilate_down(col, h)
        free = allowed & ~bad
        if not free:
            return None
        y = (free & -free).bit_length() - 1
        if bound is not None and y >= bound:
            return None
        return y

    def occupancy_array(self) -> np.ndarray:
        occ = np.zeros((self.grid.n_cols, self.grid.height_clbs), dtype=np.int16)
        for i in range(self.n):
            p = self.pos[i]
            if p is None:
                continue
            x, y = p
            for c, _m, h in self.masks[i]:
                occ[x + c, y : y + h] += 1
        return occ

    # ------------------------------------------------------------ cost

    def incident_cost(self, i: int) -> float:
        if self.pos[i] is None:
            return 0.0
        idx = self.nbr_idx[i]
        if idx is not None:
            both = self.placed_arr[idx]
            dx = np.abs(self.cxa[i] - self.cxa[idx])
            dy = np.abs(self.cya[i] - self.cya[idx])
            return float(np.sum(np.where(both, self.nbr_w[i] * (dx + dy), 0.0)))
        pos = self.pos
        cx = self.cx
        cy = self.cy
        xi = cx[i]
        yi = cy[i]
        total = 0.0
        for o, w in self.nbrs[i]:
            if pos[o] is not None:
                total += w * (abs(xi - cx[o]) + abs(yi - cy[o]))
        return total

    def wirelength(self) -> float:
        if self.ea.size == 0:
            return 0.0
        both = self.placed_arr[self.ea] & self.placed_arr[self.eb]
        dx = np.abs(self.cxa[self.ea] - self.cxa[self.eb])
        dy = np.abs(self.cya[self.ea] - self.cya[self.eb])
        return float(np.sum(np.where(both, self.ew * (dx + dy), 0.0)))


#: Incident-edge count above which per-move cost uses the numpy gather
#: path; below it a scalar loop over cached centers is faster (the CNV
#: and chain designs have degree <= 4).
_GATHER_DEGREE = 32

_KERNELS = {"fast": _FastKernel, "reference": _ReferenceKernel}


def stitch(
    design: BlockDesign,
    footprints: dict[str, Footprint],
    grid: DeviceGrid,
    params: SAParams | None = None,
    *,
    kernel: str = "fast",
    tracer: Tracer | NullTracer | None = None,
) -> StitchResult:
    """Place all instances of ``design`` on ``grid``.

    Parameters
    ----------
    design:
        The block design (instances + connectivity).
    footprints:
        Per *module* footprint from pre-implementation; every instance of
        a module reuses the same relocatable footprint.
    grid:
        Target device.
    params:
        Annealing parameters.
    kernel:
        ``"fast"`` (bitmask occupancy, cached centers, vectorized sums)
        or ``"reference"`` (the straightforward implementation).  Both
        produce identical results for a fixed seed.
    tracer:
        Where the run's ``stitch`` span tree is recorded; defaults to
        the ambient tracer.  When the ambient tracer is disabled the run
        records into a private throwaway tracer — :class:`StitchStats`
        is a view over those spans, so the timing cost is identical
        either way (a handful of phase-boundary clock reads).

    Returns
    -------
    StitchResult
        Placement, cost and convergence metrics, plus :class:`StitchStats`
        instrumentation.
    """
    params = params or SAParams()
    if kernel not in _KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; choose from {KERNELS}")
    ambient = tracer if tracer is not None else current_tracer()
    tr = ambient if ambient.enabled else Tracer()

    # The four phase spans tile the root span: every statement between
    # root entry and exit lives inside exactly one phase, so the phase
    # durations sum to the run's wall time (pinned by
    # tests/test_stitcher.py::test_phase_timings_tile_wall_time).
    with tr.span("stitch", kernel=kernel, seed=params.seed) as sp_root:
        with tr.span("stitch.setup") as sp_setup:
            design.validate()
            missing = {i.module for i in design.instances} - set(footprints)
            if missing:
                raise KeyError(
                    f"missing footprints for modules: {sorted(missing)}"
                )

            names = [i.name for i in design.instances]
            index = {n: k for k, n in enumerate(names)}
            fps = [footprints[i.module].trimmed() for i in design.instances]
            edges = [
                (index[e.src], index[e.dst], e.width) for e in design.edges
            ]
            st = _KERNELS[kernel](grid, names, fps, edges, params)
            # Same-module groups for swap moves.
            groups: dict[str, list[int]] = {}
            for k, inst in enumerate(design.instances):
                groups.setdefault(inst.module, []).append(k)
            swappable = [g for g in groups.values() if len(g) > 1]

        with tr.span("stitch.initial") as sp_initial:
            st.greedy_initial()
            cost = st.total_cost()
            best = cost
            improvements: list[tuple[int, float]] = [(0, best)]
            last_improve = 0
            # Initial temperature: accept ~half of typical uphill deltas.
            temp = max(1.0, 0.05 * cost / max(1, len(edges)))
            u = _UniformBuffer(
                np.random.default_rng(params.seed),
                block=max(256, min(8192, 4 * params.steps_per_temp)),
            )
            # Placed/unplaced membership only changes on successful place
            # moves, so the candidate lists are maintained incrementally.
            placed_list = [i for i in range(st.n) if st.pos[i] is not None]
            unplaced_list = [i for i in range(st.n) if st.pos[i] is None]

        with tr.span("stitch.anneal") as sp_anneal:
            temp_trace: list[tuple[int, float]] = []
            it = 0
            while it < params.max_iters:
                for _ in range(params.steps_per_temp):
                    it += 1
                    r = u.next()
                    if unplaced_list and r < params.p_place:
                        k = u.index(len(unplaced_list))
                        i = unplaced_list[k]
                        cost += st.try_place(i, u)
                        if st.pos[i] is not None:
                            unplaced_list[k] = unplaced_list[-1]
                            unplaced_list.pop()
                            placed_list.append(i)
                    elif swappable and r < params.p_place + params.p_swap:
                        g = swappable[u.index(len(swappable))]
                        i = u.index(len(g))
                        j = u.index(len(g) - 1)
                        if j >= i:
                            j += 1
                        cost += st.try_swap(g[i], g[j], temp, u)
                    else:
                        if not placed_list:
                            continue
                        i = placed_list[u.index(len(placed_list))]
                        cost += st.try_move(i, temp, u)
                    if cost < best - 1e-9:
                        best = cost
                        improvements.append((it, best))
                        last_improve = it
                    if it >= params.max_iters:
                        break
                temp_trace.append((it, temp))
                temp *= params.alpha
                if it - last_improve > params.patience:
                    break

        with tr.span("stitch.fill") as sp_fill:
            st.first_fit_fill()
            # Finalization is charged to the fill phase so the phases
            # keep tiling the run: the convergence scan and the final
            # cost/occupancy extraction used to fall outside every
            # phase, making the recorded phases sum short of the wall
            # time.  Convergence point: the first iteration whose best
            # cost is within 1% of the total descent from the final
            # cost.
            initial_cost = improvements[0][1]
            final_best = improvements[-1][1]
            threshold = final_best + 0.01 * max(0.0, initial_cost - final_best)
            converged_at = next(
                (it_ for it_, c in improvements if c <= threshold),
                improvements[-1][0],
            )
            wirelength = st.wirelength()
            final_cost = st.total_cost()
            occupancy = st.occupancy_array()
            placements = {names[i]: st.pos[i] for i in range(st.n)}
            n_placed = sum(1 for p in st.pos if p is not None)

        # Move-mix counters mirror StitchStats exactly; attrs record the
        # run's deterministic outcome for `repro trace summarize`.
        sp_anneal.incr("iterations", it)
        sp_anneal.incr("move_attempts", st.move_attempts)
        sp_anneal.incr("place_attempts", st.place_attempts)
        sp_anneal.incr("swap_attempts", st.swap_attempts)
        sp_anneal.incr("move_accepts", st.move_accepts)
        sp_anneal.incr("place_accepts", st.place_accepts)
        sp_anneal.incr("swap_accepts", st.swap_accepts)
        sp_anneal.incr("illegal_moves", st.illegal)
        sp_initial.incr("n_placed_initial", len(placed_list))
        sp_setup.incr("n_instances", st.n)
        sp_setup.incr("n_edges", len(edges))
        sp_fill.incr("n_placed", n_placed)
        sp_root.set_attr("n_placed", n_placed)
        sp_root.set_attr("n_unplaced", st.n - n_placed)
        sp_root.set_attr("final_cost", final_cost)
        sp_root.set_attr("converged_at", converged_at)

    stats = StitchStats(
        kernel=kernel,
        seed=params.seed,
        setup_s=sp_setup.dur_s,
        initial_s=sp_initial.dur_s,
        anneal_s=sp_anneal.dur_s,
        fill_s=sp_fill.dur_s,
        move_attempts=st.move_attempts,
        place_attempts=st.place_attempts,
        swap_attempts=st.swap_attempts,
        move_accepts=st.move_accepts,
        place_accepts=st.place_accepts,
        swap_accepts=st.swap_accepts,
        illegal_moves=st.illegal,
        temperature_trace=tuple(temp_trace),
    )
    return StitchResult(
        placements=placements,
        n_placed=n_placed,
        n_unplaced=st.n - n_placed,
        wirelength=wirelength,
        final_cost=final_cost,
        iterations=it,
        converged_at=converged_at,
        illegal_moves=st.illegal,
        history=tuple(improvements),
        occupancy=occupancy,
        stats=stats,
    )
