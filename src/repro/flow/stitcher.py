"""Simulated-annealing stitcher (RapidWright's global macro placer).

Places every pre-implemented block instance on the device, relocating each
only to x-positions whose column-kind pattern matches its footprint
(paper §IV).  The SA cost is inter-block half-perimeter wirelength plus a
penalty per unplaced block; overlapping candidates are *illegal moves*,
which the paper ties directly to footprint irregularity: ragged skylines
collide more, slowing convergence and inflating the final cost (§VIII:
the estimator's tighter, more rectangular footprints converge 1.37x
faster with 40% lower cost than constant CF = 1.68).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.device.column import ColumnKind
from repro.device.grid import DeviceGrid
from repro.flow.blockdesign import BlockDesign
from repro.place.shapes import Footprint

__all__ = ["SAParams", "StitchResult", "stitch"]

_HARD_KINDS = (ColumnKind.BRAM, ColumnKind.DSP)
_HARD_PITCH = 5  # CLB rows per BRAM/DSP site


@dataclass(frozen=True)
class SAParams:
    """Annealing schedule and move mix."""

    max_iters: int = 60000
    steps_per_temp: int = 250
    alpha: float = 0.95
    patience: int = 6000
    #: Cost charged per CLB of unplaced block area (drives the placer to
    #: place everything it can before polishing wirelength).
    unplaced_weight: float = 40.0
    #: Probability of attempting to place an unplaced block per move.
    p_place: float = 0.15
    #: Probability of a same-module swap per move.
    p_swap: float = 0.15
    seed: int = 0


@dataclass(frozen=True)
class StitchResult:
    """Outcome of one stitching run.

    Attributes
    ----------
    placements:
        Anchor ``(x, y)`` per instance, or ``None`` if unplaced.
    n_placed, n_unplaced:
        Placement counts (Fig. 5's headline metric).
    wirelength:
        Final weighted HPWL over inter-block edges.
    final_cost:
        Wirelength plus unplaced penalties (the SA objective).
    iterations:
        Total SA iterations executed.
    converged_at:
        Iteration at which the SA first came within 1% of its final cost
        (the paper's convergence-speed metric compares this across CF
        policies; footprint irregularity slows the descent).
    illegal_moves:
        Rejected-by-overlap move count.
    history:
        Best-cost trajectory as ``(iteration, cost)`` improvement points.
    occupancy:
        Final occupancy grid (columns x CLB rows), for rendering.
    """

    placements: dict[str, tuple[int, int] | None]
    n_placed: int
    n_unplaced: int
    wirelength: float
    final_cost: float
    iterations: int
    converged_at: int
    illegal_moves: int
    history: tuple[tuple[int, float], ...] = field(
        compare=False, repr=False, default=()
    )
    occupancy: np.ndarray = field(compare=False, repr=False, default=None)

    def iters_to_cost(self, target: float) -> int | None:
        """First iteration whose best cost is <= ``target``.

        The time-to-target metric annealing comparisons use: how fast one
        run reaches the quality another run ends at.  ``None`` if the run
        never got there.
        """
        for it, c in self.history:
            if c <= target + 1e-9:
                return it
        return None

    def render(self, max_width: int = 100) -> str:
        """ASCII view of the occupancy (Fig. 5 / Fig. 13 style)."""
        occ = self.occupancy
        if occ is None:
            return "<no occupancy recorded>"
        cols, rows = occ.shape
        step = max(1, math.ceil(cols / max_width))
        lines = []
        for y in range(rows - 1, -1, -max(1, rows // 40)):
            line = "".join(
                "#" if occ[x : x + step, y].any() else "."
                for x in range(0, cols, step)
            )
            lines.append(line)
        return "\n".join(lines)


class _Stitcher:
    """Mutable state of one annealing run."""

    def __init__(
        self,
        grid: DeviceGrid,
        names: list[str],
        footprints: list[Footprint],
        edges: list[tuple[int, int, int]],
        params: SAParams,
    ) -> None:
        self.grid = grid
        self.names = names
        self.fps = footprints
        self.edges = edges
        self.params = params
        self.n = len(names)
        self.occ = np.zeros((grid.n_cols, grid.height_clbs), dtype=np.int16)
        self.pos: list[tuple[int, int] | None] = [None] * self.n
        self.heights = [fp.heights_array() for fp in footprints]
        self.areas = [fp.occupied_clbs for fp in footprints]
        self.anchors_x = [
            grid.compatible_x_anchors(fp.col_kinds) for fp in footprints
        ]
        self.y_step = [
            _HARD_PITCH if any(k in _HARD_KINDS for k in fp.col_kinds) else 1
            for fp in footprints
        ]
        self.y_max = [grid.height_clbs - fp.max_height for fp in footprints]
        # Incident edges per instance for O(deg) cost deltas.
        self.incident: list[list[int]] = [[] for _ in range(self.n)]
        for ei, (a, b, _w) in enumerate(edges):
            self.incident[a].append(ei)
            self.incident[b].append(ei)
        self.rng = np.random.default_rng(params.seed)
        self.illegal = 0

    # --------------------------------------------------------------- geometry

    def fits(self, i: int, x: int, y: int) -> bool:
        hs = self.heights[i]
        occ = self.occ
        for c in range(hs.shape[0]):
            h = hs[c]
            if h and occ[x + c, y : y + h].any():
                return False
        return True

    def paint(self, i: int, x: int, y: int, delta: int) -> None:
        hs = self.heights[i]
        for c in range(hs.shape[0]):
            h = hs[c]
            if h:
                self.occ[x + c, y : y + h] += delta

    def center(self, i: int) -> tuple[float, float]:
        p = self.pos[i]
        assert p is not None
        fp = self.fps[i]
        return (p[0] + fp.width / 2.0, p[1] + fp.max_height / 2.0)

    # --------------------------------------------------------------- cost

    def edge_cost(self, ei: int) -> float:
        a, b, w = self.edges[ei]
        if self.pos[a] is None or self.pos[b] is None:
            return 0.0
        ax, ay = self.center(a)
        bx, by = self.center(b)
        return w * (abs(ax - bx) + abs(ay - by))

    def incident_cost(self, i: int) -> float:
        return sum(self.edge_cost(ei) for ei in self.incident[i])

    def total_cost(self) -> float:
        wl = sum(self.edge_cost(ei) for ei in range(len(self.edges)))
        pen = self.params.unplaced_weight * sum(
            self.areas[i] for i in range(self.n) if self.pos[i] is None
        )
        return wl + pen

    def wirelength(self) -> float:
        return sum(self.edge_cost(ei) for ei in range(len(self.edges)))

    # --------------------------------------------------------------- initial

    def greedy_initial(self) -> None:
        """Tallest-first best-fit packing.

        For each block, all compatible x anchors are scanned and the
        globally lowest fitting position is taken, which keeps the
        skyline level — the classic strip-packing heuristic.  Blocks are
        ordered by height, then area, so tall blocks claim full columns
        before shorter ones fragment them.
        """
        order = sorted(
            range(self.n),
            key=lambda i: (-self.fps[i].max_height, -self.areas[i]),
        )
        for i in order:
            best: tuple[int, int] | None = None
            for x in self.anchors_x[i]:
                for y in range(0, self.y_max[i] + 1, self.y_step[i]):
                    if best is not None and y >= best[1]:
                        break  # cannot beat the current best in this column
                    if self.fits(i, x, y):
                        if best is None or y < best[1]:
                            best = (x, y)
                        break
            if best is not None:
                self.pos[i] = best
                self.paint(i, best[0], best[1], +1)

    # --------------------------------------------------------------- moves

    def random_site(self, i: int) -> tuple[int, int] | None:
        xs = self.anchors_x[i]
        if not xs or self.y_max[i] < 0:
            return None
        x = int(xs[self.rng.integers(len(xs))])
        n_y = self.y_max[i] // self.y_step[i] + 1
        y = int(self.rng.integers(n_y)) * self.y_step[i]
        return x, y

    def try_move(self, i: int, temp: float) -> float:
        """Relocate instance ``i``; returns the accepted cost delta."""
        site = self.random_site(i)
        if site is None:
            return 0.0
        old = self.pos[i]
        assert old is not None
        self.paint(i, old[0], old[1], -1)
        x, y = site
        if not self.fits(i, x, y):
            self.paint(i, old[0], old[1], +1)
            self.illegal += 1
            return 0.0
        before = self.incident_cost(i)
        self.pos[i] = (x, y)
        after = self.incident_cost(i)
        delta = after - before
        if delta <= 0 or self.rng.random() < math.exp(-delta / max(temp, 1e-9)):
            self.paint(i, x, y, +1)
            return delta
        self.pos[i] = old
        self.paint(i, old[0], old[1], +1)
        return 0.0

    def try_place(self, i: int) -> float:
        """Attempt to place an unplaced instance (always beneficial)."""
        for _ in range(8):
            site = self.random_site(i)
            if site is None:
                return 0.0
            x, y = site
            if self.fits(i, x, y):
                self.pos[i] = (x, y)
                self.paint(i, x, y, +1)
                gain = self.incident_cost(i) - self.params.unplaced_weight * self.areas[i]
                return gain
            self.illegal += 1
        return 0.0

    def try_swap(self, i: int, j: int, temp: float) -> float:
        """Swap two placed instances with identical footprints."""
        pi, pj = self.pos[i], self.pos[j]
        if pi is None or pj is None or pi == pj:
            return 0.0
        before = self.incident_cost(i) + self.incident_cost(j)
        self.pos[i], self.pos[j] = pj, pi
        after = self.incident_cost(i) + self.incident_cost(j)
        delta = after - before
        if delta <= 0 or self.rng.random() < math.exp(-delta / max(temp, 1e-9)):
            return delta  # identical footprints: occupancy is unchanged
        self.pos[i], self.pos[j] = pi, pj
        return 0.0


def stitch(
    design: BlockDesign,
    footprints: dict[str, Footprint],
    grid: DeviceGrid,
    params: SAParams | None = None,
) -> StitchResult:
    """Place all instances of ``design`` on ``grid``.

    Parameters
    ----------
    design:
        The block design (instances + connectivity).
    footprints:
        Per *module* footprint from pre-implementation; every instance of
        a module reuses the same relocatable footprint.
    grid:
        Target device.
    params:
        Annealing parameters.

    Returns
    -------
    StitchResult
        Placement, cost and convergence metrics.
    """
    params = params or SAParams()
    design.validate()
    missing = {i.module for i in design.instances} - set(footprints)
    if missing:
        raise KeyError(f"missing footprints for modules: {sorted(missing)}")

    names = [i.name for i in design.instances]
    index = {n: k for k, n in enumerate(names)}
    fps = [footprints[i.module].trimmed() for i in design.instances]
    edges = [(index[e.src], index[e.dst], e.width) for e in design.edges]

    st = _Stitcher(grid, names, fps, edges, params)
    st.greedy_initial()

    # Same-module groups for swap moves.
    groups: dict[str, list[int]] = {}
    for k, inst in enumerate(design.instances):
        groups.setdefault(inst.module, []).append(k)
    swappable = [g for g in groups.values() if len(g) > 1]

    cost = st.total_cost()
    best = cost
    improvements: list[tuple[int, float]] = [(0, best)]
    last_improve = 0
    # Initial temperature: accept ~half of typical uphill deltas.
    temp = max(1.0, 0.05 * cost / max(1, len(edges)))

    rng = st.rng
    it = 0
    # Placed/unplaced membership only changes on successful place moves,
    # so the candidate lists are maintained incrementally.
    placed_list = [i for i in range(st.n) if st.pos[i] is not None]
    unplaced_list = [i for i in range(st.n) if st.pos[i] is None]
    while it < params.max_iters:
        for _ in range(params.steps_per_temp):
            it += 1
            r = rng.random()
            if unplaced_list and r < params.p_place:
                k = int(rng.integers(len(unplaced_list)))
                i = unplaced_list[k]
                delta = st.try_place(i)
                if st.pos[i] is not None:
                    unplaced_list[k] = unplaced_list[-1]
                    unplaced_list.pop()
                    placed_list.append(i)
                cost += delta
            elif swappable and r < params.p_place + params.p_swap:
                g = swappable[int(rng.integers(len(swappable)))]
                i, j = rng.choice(len(g), size=2, replace=False)
                cost += st.try_swap(g[int(i)], g[int(j)], temp)
            else:
                if not placed_list:
                    continue
                i = placed_list[int(rng.integers(len(placed_list)))]
                cost += st.try_move(i, temp)
            if cost < best - 1e-9:
                best = cost
                improvements.append((it, best))
                last_improve = it
            if it >= params.max_iters:
                break
        temp *= params.alpha
        if it - last_improve > params.patience:
            break

    # Final deterministic fill: first-fit any block SA left unplaced (the
    # random place moves only sample a few sites per attempt).
    for i in range(st.n):
        if st.pos[i] is not None:
            continue
        done = False
        for x in st.anchors_x[i]:
            if done:
                break
            for y in range(0, st.y_max[i] + 1, st.y_step[i]):
                if st.fits(i, x, y):
                    st.pos[i] = (x, y)
                    st.paint(i, x, y, +1)
                    done = True
                    break

    # Convergence point: the first iteration whose best cost is within 1%
    # of the total descent from the final cost.
    initial_cost = improvements[0][1]
    final_best = improvements[-1][1]
    threshold = final_best + 0.01 * max(0.0, initial_cost - final_best)
    converged_at = next(
        (it_ for it_, c in improvements if c <= threshold), improvements[-1][0]
    )

    placements = {
        names[i]: (st.pos[i] if st.pos[i] is None else tuple(st.pos[i]))
        for i in range(st.n)
    }
    n_placed = sum(1 for p in st.pos if p is not None)
    return StitchResult(
        placements=placements,
        n_placed=n_placed,
        n_unplaced=st.n - n_placed,
        wirelength=st.wirelength(),
        final_cost=st.total_cost(),
        iterations=it,
        converged_at=converged_at,
        illegal_moves=st.illegal,
        history=tuple(improvements),
        occupancy=st.occ.copy(),
    )
