"""Multi-seed placement restarts (SA and GA).

Stochastic placers are cheap to restart and their final cost varies
with the seed, so the classic quality lever (RapidLayout-style
stochastic placement) is to run several independent seeds and keep the
best run.  ``stitch_best`` does exactly that for the SA stitcher and
``evolve_best`` for the GA evolver, optionally fanning the seeds out
over worker processes with :mod:`concurrent.futures`.

Determinism: the winner depends only on the seed list — results are
collected in seed order and ties break toward the earliest seed — so the
same seeds produce the same :class:`~repro.flow.stitcher.StitchResult`
regardless of ``n_workers`` (enforced by
``tests/test_determinism_cross_process.py``).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Sequence

from repro.device.grid import DeviceGrid
from repro.flow.blockdesign import BlockDesign
from repro.flow.evolve import GAParams, evolve
from repro.flow.stitcher import SAParams, StitchResult, stitch
from repro.obs.tracer import NullTracer, Tracer, current_tracer
from repro.place.shapes import Footprint

__all__ = ["evolve_best", "stitch_best"]


def _run_one(
    args: tuple[
        BlockDesign, dict[str, Footprint], DeviceGrid, SAParams, str, bool
    ],
) -> tuple[StitchResult, dict | None]:
    """Worker entry point (module-level so it pickles).

    When ``want_trace`` is set the seed's ``stitch`` span tree is
    recorded into a worker-local tracer and returned alongside the
    result, so the parent can graft every restart's phase breakdown into
    its own trace exactly once regardless of worker count.
    """
    design, footprints, grid, params, kernel, want_trace = args
    tr = Tracer() if want_trace else None
    result = stitch(design, footprints, grid, params, kernel=kernel, tracer=tr)
    trace = tr.roots[0].to_json_dict() if tr else None
    return result, trace


def _run_one_evolve(
    args: tuple[
        BlockDesign, dict[str, Footprint], DeviceGrid, GAParams, str, bool
    ],
) -> tuple[StitchResult, dict | None]:
    """GA worker entry point (module-level so it pickles)."""
    design, footprints, grid, params, kernel, want_trace = args
    tr = Tracer() if want_trace else None
    result = evolve(design, footprints, grid, params, kernel=kernel, tracer=tr)
    trace = tr.roots[0].to_json_dict() if tr else None
    return result, trace


def stitch_best(
    design: BlockDesign,
    footprints: dict[str, Footprint],
    grid: DeviceGrid,
    params: SAParams | None = None,
    *,
    n_seeds: int = 4,
    n_workers: int | None = None,
    seeds: Sequence[int] | None = None,
    kernel: str = "fast",
    tracer: Tracer | NullTracer | None = None,
) -> StitchResult:
    """Anneal several independent seeds and return the best run.

    Parameters
    ----------
    design, footprints, grid, params:
        As for :func:`~repro.flow.stitcher.stitch`; ``params.seed`` is
        the base seed of the restart family.
    n_seeds:
        Number of restarts when ``seeds`` is not given; seed ``k`` of the
        family is ``params.seed + k``.
    n_workers:
        Worker processes to fan the seeds over.  ``None``, 0 or 1 runs
        serially in-process; the winner is identical either way.
    seeds:
        Explicit seed list, overriding ``n_seeds``.
    kernel:
        Move-kernel choice, forwarded to :func:`stitch`.
    tracer:
        Where the ``stitch.restarts`` span is recorded, with one child
        ``stitch`` span per seed (merged back from the workers when the
        seeds fan out); defaults to the ambient tracer.  With tracing
        disabled each seed records into the private tracer
        :func:`stitch` builds for its own :class:`StitchStats`.

    Returns
    -------
    StitchResult
        The run with the lowest ``final_cost``; ties break toward the
        earliest seed in the list.  ``result.stats.seed`` records the
        winning seed.
    """
    params = params or SAParams()
    if seeds is None:
        if n_seeds < 1:
            raise ValueError(f"n_seeds must be >= 1, got {n_seeds}")
        seeds = [params.seed + k for k in range(n_seeds)]
    else:
        seeds = list(seeds)
        if not seeds:
            raise ValueError("seeds must not be empty")

    ambient = tracer if tracer is not None else current_tracer()
    want_trace = ambient.enabled

    jobs = [
        (design, footprints, grid, replace(params, seed=s), kernel, want_trace)
        for s in seeds
    ]
    return _best_of(jobs, _run_one, "stitch.restarts", ambient, n_workers)


def evolve_best(
    design: BlockDesign,
    footprints: dict[str, Footprint],
    grid: DeviceGrid,
    params: GAParams | None = None,
    *,
    n_seeds: int = 4,
    n_workers: int | None = None,
    seeds: Sequence[int] | None = None,
    kernel: str = "fast",
    tracer: Tracer | NullTracer | None = None,
) -> StitchResult:
    """Evolve several independent GA seeds and return the best run.

    The GA peer of :func:`stitch_best`: same seed-family expansion, same
    process fan-out, same worker-count-independent winner (results are
    collected in seed order, ties break toward the earliest seed).  The
    ``evolve.restarts`` span records one child ``evolve`` span per seed.
    """
    params = params or GAParams()
    if seeds is None:
        if n_seeds < 1:
            raise ValueError(f"n_seeds must be >= 1, got {n_seeds}")
        seeds = [params.seed + k for k in range(n_seeds)]
    else:
        seeds = list(seeds)
        if not seeds:
            raise ValueError("seeds must not be empty")

    ambient = tracer if tracer is not None else current_tracer()
    want_trace = ambient.enabled

    jobs = [
        (design, footprints, grid, replace(params, seed=s), kernel, want_trace)
        for s in seeds
    ]
    return _best_of(jobs, _run_one_evolve, "evolve.restarts", ambient, n_workers)


def _best_of(jobs, runner, span_name, ambient, n_workers) -> StitchResult:
    """Fan the seed jobs out, graft worker traces, keep the best run."""
    want_trace = ambient.enabled
    with ambient.span(span_name, n_seeds=len(jobs)) as sp:
        if n_workers is None or n_workers <= 1 or len(jobs) == 1:
            outcomes = [runner(job) for job in jobs]
        else:
            try:
                with ProcessPoolExecutor(
                    max_workers=min(n_workers, len(jobs))
                ) as pool:
                    # map() preserves seed order, which the tiebreak relies on.
                    outcomes = list(pool.map(runner, jobs))
            except OSError:  # process pools unavailable (restricted sandboxes)
                outcomes = [runner(job) for job in jobs]
        if want_trace:
            for _result, trace in outcomes:
                ambient.graft(trace)

        results = [result for result, _trace in outcomes]
        best = results[0]
        for res in results[1:]:
            if res.final_cost < best.final_cost:
                best = res
        sp.set_attr("winner_seed", best.stats.seed if best.stats else None)
        sp.set_attr("best_cost", best.final_cost)
    return best
