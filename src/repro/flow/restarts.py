"""Multi-seed placement restarts (SA, GA and parallel tempering).

Stochastic placers are cheap to restart and their final cost varies
with the seed, so the classic quality lever (RapidLayout-style
stochastic placement) is to run several independent seeds and keep the
best run.  ``stitch_best`` does exactly that for the SA stitcher,
``evolve_best`` for the GA evolver and ``temper_best`` for the
parallel-tempering placer, fanning the seeds out over worker processes
through the shared :class:`~repro.flow.fanout.FanOut`.

Winner selection is the shared pareto path
(:func:`~repro.flow.fanout.best_result`): fewest unplaced blocks first,
then lowest ``final_cost`` — the same key
:class:`~repro.dse.explorer.DSEExplorer` ranks portfolio placements by.
Ranking on ``final_cost`` alone (the old behavior) was a bug: a seed
that leaves a block unplaced can undercut a fully-placed seed on cost
alone (``tests/test_stitcher_restarts.py`` pins the regression).

Determinism: the winner depends only on the seed list — results are
collected in seed order and ties break toward the earliest seed — so the
same seeds produce the same :class:`~repro.flow.stitcher.StitchResult`
regardless of ``n_workers`` (enforced by
``tests/test_determinism_cross_process.py``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Mapping, Sequence

from repro.device.grid import DeviceGrid
from repro.flow.blockdesign import BlockDesign
from repro.flow.evolve import GAParams, evolve
from repro.flow.fanout import FanOut, best_result, graft_traces
from repro.flow.stitcher import SAParams, StitchResult, stitch
from repro.flow.tempering import PTParams, temper
from repro.obs.tracer import NullTracer, Tracer, current_tracer
from repro.place.shapes import Footprint

__all__ = ["evolve_best", "stitch_best", "temper_best"]


def _run_one(
    args: tuple[
        BlockDesign, dict[str, Footprint], DeviceGrid, SAParams, str,
        Mapping[str, tuple[int, int] | None] | None,
        Mapping[str, float] | None, bool
    ],
) -> tuple[StitchResult, dict | None]:
    """Worker entry point (module-level so it pickles).

    When ``want_trace`` is set the seed's ``stitch`` span tree is
    recorded into a worker-local tracer and returned alongside the
    result, so the parent can graft every restart's phase breakdown into
    its own trace exactly once regardless of worker count.
    """
    design, footprints, grid, params, kernel, initial, delays, want_trace = args
    tr = Tracer() if want_trace else None
    result = stitch(design, footprints, grid, params, kernel=kernel,
                    initial_placements=initial, module_delays=delays,
                    tracer=tr)
    trace = tr.roots[0].to_json_dict() if tr else None
    return result, trace


def _run_one_evolve(
    args: tuple[
        BlockDesign, dict[str, Footprint], DeviceGrid, GAParams, str,
        Mapping[str, float] | None, bool
    ],
) -> tuple[StitchResult, dict | None]:
    """GA worker entry point (module-level so it pickles)."""
    design, footprints, grid, params, kernel, delays, want_trace = args
    tr = Tracer() if want_trace else None
    result = evolve(design, footprints, grid, params, kernel=kernel,
                    module_delays=delays, tracer=tr)
    trace = tr.roots[0].to_json_dict() if tr else None
    return result, trace


def _run_one_temper(
    args: tuple[
        BlockDesign, dict[str, Footprint], DeviceGrid, PTParams, str,
        Mapping[str, tuple[int, int] | None] | None,
        Mapping[str, float] | None, bool
    ],
) -> tuple[StitchResult, dict | None]:
    """Tempering worker entry point (module-level so it pickles).

    Each restart runs its chains serially inside the worker — the
    restart family is already the process-level fan-out.
    """
    design, footprints, grid, params, kernel, initial, delays, want_trace = args
    tr = Tracer() if want_trace else None
    result = temper(design, footprints, grid, params, kernel=kernel,
                    initial_placements=initial, module_delays=delays,
                    tracer=tr)
    trace = tr.roots[0].to_json_dict() if tr else None
    return result, trace


def _seed_family(
    base_seed: int, n_seeds: int, seeds: Sequence[int] | None
) -> list[int]:
    """Expand the restart family's seed list (shared by all families)."""
    if seeds is None:
        if n_seeds < 1:
            raise ValueError(f"n_seeds must be >= 1, got {n_seeds}")
        return [base_seed + k for k in range(n_seeds)]
    seeds = list(seeds)
    if not seeds:
        raise ValueError("seeds must not be empty")
    return seeds


def stitch_best(
    design: BlockDesign,
    footprints: dict[str, Footprint],
    grid: DeviceGrid,
    params: SAParams | None = None,
    *,
    n_seeds: int = 4,
    n_workers: int | None = None,
    seeds: Sequence[int] | None = None,
    kernel: str = "fast",
    initial_placements: Mapping[str, tuple[int, int] | None] | None = None,
    module_delays: Mapping[str, float] | None = None,
    tracer: Tracer | NullTracer | None = None,
) -> StitchResult:
    """Anneal several independent seeds and return the best run.

    Parameters
    ----------
    design, footprints, grid, params:
        As for :func:`~repro.flow.stitcher.stitch`; ``params.seed`` is
        the base seed of the restart family.
    n_seeds:
        Number of restarts when ``seeds`` is not given; seed ``k`` of the
        family is ``params.seed + k``.
    n_workers:
        Worker processes to fan the seeds over.  ``None``, 0 or 1 runs
        serially in-process; the winner is identical either way.
    seeds:
        Explicit seed list, overriding ``n_seeds``.
    kernel:
        Move-kernel choice, forwarded to :func:`stitch`.
    initial_placements:
        Optional warm start every seed anneals from (the analytic
        placer's legalized output in the ``gp+sa`` pipeline); forwarded
        verbatim to each seed's :func:`stitch`.
    module_delays:
        Per-module delays (ns) for the timing cost term, forwarded
        verbatim to each seed's :func:`stitch`.
    tracer:
        Where the ``stitch.restarts`` span is recorded, with one child
        ``stitch`` span per seed (merged back from the workers when the
        seeds fan out); defaults to the ambient tracer.  With tracing
        disabled each seed records into the private tracer
        :func:`stitch` builds for its own :class:`StitchStats`.

    Returns
    -------
    StitchResult
        The pareto-best run — fewest unplaced blocks, then lowest
        ``final_cost`` (the same key ``DSEExplorer`` selects by); ties
        break toward the earliest seed in the list.
        ``result.stats.seed`` records the winning seed.
    """
    params = params or SAParams()
    seeds = _seed_family(params.seed, n_seeds, seeds)
    ambient = tracer if tracer is not None else current_tracer()
    jobs = [
        (design, footprints, grid, replace(params, seed=s), kernel,
         initial_placements, module_delays, ambient.enabled)
        for s in seeds
    ]
    return _best_of(jobs, _run_one, "stitch.restarts", ambient, n_workers)


def evolve_best(
    design: BlockDesign,
    footprints: dict[str, Footprint],
    grid: DeviceGrid,
    params: GAParams | None = None,
    *,
    n_seeds: int = 4,
    n_workers: int | None = None,
    seeds: Sequence[int] | None = None,
    kernel: str = "fast",
    module_delays: Mapping[str, float] | None = None,
    tracer: Tracer | NullTracer | None = None,
) -> StitchResult:
    """Evolve several independent GA seeds and return the best run.

    The GA peer of :func:`stitch_best`: same seed-family expansion, same
    process fan-out, same worker-count-independent pareto winner
    (fewest unplaced blocks, then lowest ``final_cost``; results are
    collected in seed order, ties break toward the earliest seed).  The
    ``evolve.restarts`` span records one child ``evolve`` span per seed.
    """
    params = params or GAParams()
    seeds = _seed_family(params.seed, n_seeds, seeds)
    ambient = tracer if tracer is not None else current_tracer()
    jobs = [
        (design, footprints, grid, replace(params, seed=s), kernel,
         module_delays, ambient.enabled)
        for s in seeds
    ]
    return _best_of(jobs, _run_one_evolve, "evolve.restarts", ambient, n_workers)


def temper_best(
    design: BlockDesign,
    footprints: dict[str, Footprint],
    grid: DeviceGrid,
    params: PTParams | None = None,
    *,
    n_seeds: int = 4,
    n_workers: int | None = None,
    seeds: Sequence[int] | None = None,
    kernel: str = "fast",
    initial_placements: Mapping[str, tuple[int, int] | None] | None = None,
    module_delays: Mapping[str, float] | None = None,
    tracer: Tracer | NullTracer | None = None,
) -> StitchResult:
    """Run several independent tempering seeds and return the best run.

    The parallel-tempering peer of :func:`stitch_best`: same seed-family
    expansion, same process fan-out, same worker-count-independent
    pareto winner (``initial_placements``, when given, warm starts every
    seed's chains the same way).  Each seed's chains run serially inside
    its worker (the family is already the process-level fan-out); the
    ``tempering.restarts`` span records one child ``tempering`` span per
    seed.
    """
    params = params or PTParams()
    seeds = _seed_family(params.seed, n_seeds, seeds)
    ambient = tracer if tracer is not None else current_tracer()
    jobs = [
        (design, footprints, grid, replace(params, seed=s), kernel,
         initial_placements, module_delays, ambient.enabled)
        for s in seeds
    ]
    return _best_of(
        jobs, _run_one_temper, "tempering.restarts", ambient, n_workers
    )


def _best_of(
    jobs: list,
    runner: Callable,
    span_name: str,
    ambient: Tracer | NullTracer,
    n_workers: int | None,
) -> StitchResult:
    """Fan the seed jobs out, graft worker traces, keep the pareto-best run."""
    want_trace = ambient.enabled
    with ambient.span(span_name, n_seeds=len(jobs)) as sp:
        with FanOut(n_workers, len(jobs)) as fan:
            outcomes = fan.run(runner, jobs)
        if want_trace:
            graft_traces(ambient, [trace for _result, trace in outcomes])

        best = best_result([result for result, _trace in outcomes])
        sp.set_attr("winner_seed", best.stats.seed if best.stats else None)
        sp.set_attr("best_cost", best.final_cost)
        sp.set_attr("best_unplaced", best.n_unplaced)
    return best
