"""Cross-policy flow comparison helpers.

``compare_flows`` runs one block design under several CF policies and
collects the metrics the paper reports side by side (placed blocks, tool
runs, PBlock area, SA cost/convergence) into a single renderable table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.grid import DeviceGrid
from repro.flow.blockdesign import BlockDesign
from repro.flow.policy import CFPolicy
from repro.flow.rwflow import RWFlowResult, run_rw_flow
from repro.flow.stitcher import SAParams
from repro.utils.tables import Table

__all__ = ["FlowComparison", "compare_flows"]


@dataclass(frozen=True)
class FlowComparison:
    """Results of running one design under several policies."""

    design_name: str
    n_instances: int
    results: dict[str, RWFlowResult]

    def render(self) -> str:
        t = Table(
            [
                "policy",
                "placed",
                "tool runs",
                "mean CF",
                "PBlock slices",
                "SA cost",
                "converged@",
            ],
            title=f"flow comparison: {self.design_name}",
        )
        for label, res in self.results.items():
            t.add_row(
                [
                    label,
                    f"{res.stitch.n_placed}/{self.n_instances}",
                    res.total_tool_runs,
                    f"{res.mean_cf:.2f}",
                    res.total_pblock_slices,
                    f"{res.stitch.final_cost:.0f}",
                    res.stitch.converged_at,
                ]
            )
        return t.render()

    def best_by_placed(self) -> str:
        """Label of the policy placing the most blocks."""
        return max(self.results, key=lambda k: self.results[k].stitch.n_placed)

    def best_by_runs(self) -> str:
        """Label of the cheapest policy in tool runs."""
        return min(self.results, key=lambda k: self.results[k].total_tool_runs)


def compare_flows(
    design: BlockDesign,
    grid: DeviceGrid,
    policies: dict[str, CFPolicy],
    *,
    stitch_grid: DeviceGrid | None = None,
    sa_params: SAParams | None = None,
) -> FlowComparison:
    """Run ``design`` under every policy and bundle the results."""
    if not policies:
        raise ValueError("need at least one policy")
    results = {
        label: run_rw_flow(
            design, grid, policy, stitch_grid=stitch_grid, sa_params=sa_params
        )
        for label, policy in policies.items()
    }
    return FlowComparison(
        design_name=design.name, n_instances=design.n_instances, results=results
    )
