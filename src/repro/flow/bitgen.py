"""Bitstream assembly (the flow's final step).

The paper's flow ends by "stitching [the blocks] together to obtain a
full bitstream".  This module models that step: each placed instance's
configuration frames are emitted at its anchor position, producing a
deterministic full-device frame map with a header and CRC.  The key
property being modeled is *relocatability*: a pre-implemented module's
frame content is identical wherever it is placed — only the frame
addresses change — which is what lets RapidWright cache implementations.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

from repro.device.grid import DeviceGrid
from repro.flow.blockdesign import BlockDesign
from repro.flow.stitcher import StitchResult
from repro.place.shapes import Footprint
from repro.utils.rng import derive_seed

__all__ = ["Bitstream", "generate_bitstream", "module_frames"]

_MAGIC = b"RPRO"
_VERSION = 1
#: Configuration bytes per occupied CLB cell in this model.
_BYTES_PER_CLB = 8


def module_frames(module_name: str, footprint: Footprint) -> bytes:
    """Relocatable configuration frames of one pre-implemented module.

    A pure function of the module identity and its footprint — the same
    bytes are reused for every instance at every legal anchor.
    """
    out = bytearray()
    seed = derive_seed("frames", module_name)
    for c, h in enumerate(footprint.heights):
        for y in range(h):
            word = derive_seed("frame-word", seed, c, y) & 0xFFFFFFFFFFFFFFFF
            out += struct.pack("<Q", word)
    return bytes(out)


@dataclass(frozen=True)
class Bitstream:
    """An assembled full-device configuration.

    Attributes
    ----------
    device:
        Part name.
    payload:
        Header + per-instance frame records.
    n_configured_instances:
        Instances whose frames were emitted (placed ones).
    """

    device: str
    payload: bytes
    n_configured_instances: int

    @property
    def crc(self) -> str:
        """SHA-256 of the payload (hex)."""
        return hashlib.sha256(self.payload).hexdigest()

    @property
    def size_bytes(self) -> int:
        """Total size."""
        return len(self.payload)


def generate_bitstream(
    design: BlockDesign,
    footprints: dict[str, Footprint],
    stitch: StitchResult,
    grid: DeviceGrid,
) -> Bitstream:
    """Assemble the stitched placement into a bitstream.

    Instances are emitted in deterministic (name-sorted) order; each
    record is ``(x, y, n_bytes, frames)``.  Unplaced instances are
    skipped — a partial design still configures, mirroring Fig. 5's
    partially-placed results.
    """
    module_of = {i.name: i.module for i in design.instances}
    frame_cache: dict[str, bytes] = {}

    body = bytearray()
    configured = 0
    for name in sorted(stitch.placements):
        pos = stitch.placements[name]
        if pos is None:
            continue
        module = module_of[name]
        if module not in frame_cache:
            frame_cache[module] = module_frames(
                module, footprints[module].trimmed()
            )
        frames = frame_cache[module]
        body += struct.pack("<HHI", pos[0], pos[1], len(frames))
        body += frames
        configured += 1

    header = _MAGIC + struct.pack(
        "<HH16sI",
        _VERSION,
        configured,
        grid.name.encode("ascii")[:16].ljust(16, b"\0"),
        len(body),
    )
    return Bitstream(
        device=grid.name,
        payload=bytes(header) + bytes(body),
        n_configured_instances=configured,
    )
