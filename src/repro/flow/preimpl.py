"""Per-module pre-implementation with caching.

RapidWright implements each unique module once — synthesis, optimization,
quick placement, PBlock generation, detailed place & route — and reuses
the result for every instance (paper §I).  ``implement_design`` is that
loop; the cache is keyed by module name, so a design with 175 instances of
74 unique modules runs 74 implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.grid import DeviceGrid
from repro.flow.blockdesign import BlockDesign
from repro.flow.policy import CFOutcome, CFPolicy
from repro.netlist.stats import NetlistStats, compute_stats
from repro.place.quick import ShapeReport, quick_place
from repro.route.timing import TimingReport, longest_path
from repro.rtlgen.base import RTLModule
from repro.synth.mapper import opt_design, synthesize

__all__ = ["ImplementedModule", "implement_module", "implement_design"]


@dataclass(frozen=True)
class ImplementedModule:
    """A pre-implemented (relocatable, placed & routed) module.

    Attributes
    ----------
    stats:
        Post-synthesis statistics.
    report:
        Quick-placement shape report.
    outcome:
        CF selection outcome (CF, PBlock, packing, tool runs).
    timing:
        Longest-path report of the placed module.
    """

    stats: NetlistStats
    report: ShapeReport
    outcome: CFOutcome
    timing: TimingReport

    @property
    def name(self) -> str:
        """Module name."""
        return self.stats.name

    @property
    def used_slices(self) -> int:
        """Slices occupied by the placed module."""
        return self.outcome.result.used_slices


def implement_module(
    module: RTLModule, grid: DeviceGrid, policy: CFPolicy
) -> ImplementedModule:
    """Synthesize, size and place one module under ``policy``."""
    netlist = opt_design(synthesize(module))
    stats = compute_stats(netlist)
    report = quick_place(stats)
    outcome = policy.choose(stats, report, grid)
    timing = longest_path(stats, outcome.result, outcome.pblock)
    return ImplementedModule(
        stats=stats, report=report, outcome=outcome, timing=timing
    )


def implement_design(
    design: BlockDesign, grid: DeviceGrid, policy: CFPolicy
) -> dict[str, ImplementedModule]:
    """Pre-implement every unique module of ``design``.

    Returns a name-keyed cache; total tool runs are
    ``sum(m.outcome.n_runs for m in result.values())``.
    """
    design.validate()
    cache: dict[str, ImplementedModule] = {}
    for name, module in design.modules.items():
        cache[name] = implement_module(module, grid, policy)
    return cache
