"""Per-module pre-implementation with caching, parallel fan-out and
failure aggregation.

RapidWright implements each unique module once — synthesis, optimization,
quick placement, PBlock generation, detailed place & route — and reuses
the result for every instance (paper §I).  ``implement_design`` is that
loop, upgraded in three ways over the naive sequential version:

* **Persistent cache** — modules are looked up in a
  :class:`~repro.flow.cache.ModuleCache` (content-addressed on module,
  policy and grid), so repeated flow runs and DSE steps re-implement only
  what changed.  A design with 175 instances of 74 unique modules runs at
  most 74 implementations, and zero on a warm cache.
* **Process-pool fan-out** — cache misses are independent (every module's
  implementation is a pure function of its content), so they fan out over
  ``n_workers`` processes.  Results are collected per-module and assembled
  in design order, making the output bitwise identical for any worker
  count (the same discipline as :func:`~repro.flow.restarts.stitch_best`).
* **Failure aggregation** — an infeasible module no longer aborts the
  whole design.  Everything implementable is implemented; the failures are
  returned in a :class:`FlowInfeasibleReport` so the caller can stitch the
  placeable subset and count the rest as unplaced.

Every call also produces :class:`FlowStats` observability: per-module tool
runs and wall time, cache hit/miss counters and the policy's CF prediction
error.

Note on policy-side state: a mutable policy (the learned
:class:`~repro.estimator.strategy.EstimatedCF` keeps first-run counters)
is pickled into each worker, so its in-process counters only advance on
the sequential path.  Use :attr:`FlowStats.first_run_rate` instead — it is
derived from the per-module run counts and identical for any worker count.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Mapping
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.device.grid import DeviceGrid
from repro.flow.blockdesign import BlockDesign
from repro.flow.cache import CacheStats, ModuleCache
from repro.flow.policy import CFOutcome, CFPolicy, FlowInfeasibleError
from repro.netlist.stats import NetlistStats, compute_stats
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, current_tracer
from repro.place.quick import ShapeReport, quick_place
from repro.route.timing import TimingReport, longest_path
from repro.rtlgen.base import RTLModule
from repro.synth.mapper import opt_design, synthesize

__all__ = [
    "FlowInfeasibleReport",
    "FlowStats",
    "ImplementedModule",
    "ModuleFailure",
    "ModuleFlowStats",
    "PreImplResult",
    "implement_design",
    "implement_module",
]


@dataclass(frozen=True)
class ImplementedModule:
    """A pre-implemented (relocatable, placed & routed) module.

    Attributes
    ----------
    stats:
        Post-synthesis statistics.
    report:
        Quick-placement shape report.
    outcome:
        CF selection outcome (CF, PBlock, packing, tool runs).
    timing:
        Longest-path report of the placed module.
    """

    stats: NetlistStats
    report: ShapeReport
    outcome: CFOutcome
    timing: TimingReport

    @property
    def name(self) -> str:
        """Module name."""
        return self.stats.name

    @property
    def used_slices(self) -> int:
        """Slices occupied by the placed module."""
        return self.outcome.result.used_slices


@dataclass(frozen=True)
class ModuleFailure:
    """One module the policy could not implement."""

    module: str
    reason: str
    attempted_cfs: tuple[float, ...] = ()
    n_runs: int = 0


@dataclass(frozen=True)
class FlowInfeasibleReport:
    """Every infeasible module of one pre-implementation pass.

    Truthiness reflects whether anything failed, so callers can write
    ``if result.report: ...``.
    """

    failures: tuple[ModuleFailure, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.failures)

    def __len__(self) -> int:
        return len(self.failures)

    @property
    def modules(self) -> tuple[str, ...]:
        """Names of the failed modules, in design order."""
        return tuple(f.module for f in self.failures)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        if not self.failures:
            return "all modules implemented"
        lines = [f"{len(self.failures)} infeasible module(s):"]
        for f in self.failures:
            tried = (
                f" (tried {len(f.attempted_cfs)} CFs: "
                f"{f.attempted_cfs[0]:.2f}..{f.attempted_cfs[-1]:.2f})"
                if f.attempted_cfs
                else ""
            )
            lines.append(f"  - {f.module}: {f.reason}{tried}")
        return "\n".join(lines)

    def raise_if_any(self) -> None:
        """Restore abort-on-failure semantics for strict callers."""
        if self.failures:
            raise FlowInfeasibleError(
                self.describe(),
                attempted_cfs=tuple(
                    cf for f in self.failures for cf in f.attempted_cfs
                ),
                n_runs=sum(f.n_runs for f in self.failures),
            )


@dataclass(frozen=True)
class ModuleFlowStats:
    """Observability record of one module's trip through the flow.

    ``n_runs`` is the paper's tool-run count for the module's outcome;
    ``new_runs`` is what this call actually executed (0 on a cache hit).
    """

    module: str
    feasible: bool
    cache_hit: bool
    n_runs: int
    new_runs: int
    wall_s: float
    cf: float = 0.0
    predicted_cf: float = 0.0

    @property
    def prediction_error(self) -> float:
        """Implemented CF minus the policy's initial guess."""
        return self.cf - self.predicted_cf


@dataclass(frozen=True)
class FlowStats:
    """Aggregate observability of one ``implement_design`` call.

    Attributes
    ----------
    modules:
        One record per unique module, in design order (failures included).
    n_workers:
        Worker processes the misses were fanned over (1 = sequential).
    wall_s:
        Wall-clock time of the whole call.
    cache:
        Hit/miss counters of the cache used (a snapshot; counters of a
        shared cache keep growing across calls).
    """

    modules: tuple[ModuleFlowStats, ...] = ()
    n_workers: int = 1
    wall_s: float = 0.0
    cache: CacheStats = field(default_factory=CacheStats)

    # ------------------------------------------------------------- counters

    @property
    def n_modules(self) -> int:
        """Unique modules processed."""
        return len(self.modules)

    @property
    def cache_hits(self) -> int:
        """Modules served from the cache."""
        return sum(1 for m in self.modules if m.cache_hit)

    @property
    def cache_misses(self) -> int:
        """Modules actually implemented by this call."""
        return sum(1 for m in self.modules if not m.cache_hit)

    @property
    def hit_rate(self) -> float:
        """Cache hits over all modules."""
        return self.cache_hits / len(self.modules) if self.modules else 0.0

    @property
    def total_tool_runs(self) -> int:
        """Run count of every outcome, cached or not (the §VIII proxy)."""
        return sum(m.n_runs for m in self.modules)

    @property
    def new_tool_runs(self) -> int:
        """Runs actually executed by this call (0 on a fully warm cache)."""
        return sum(m.new_runs for m in self.modules)

    @property
    def n_infeasible(self) -> int:
        """Modules no CF could implement."""
        return sum(1 for m in self.modules if not m.feasible)

    @property
    def first_run_rate(self) -> float:
        """Fraction of implemented modules that needed exactly one run
        (the paper's 52.7% statistic, derived without policy-side state)."""
        done = [m for m in self.modules if m.feasible]
        if not done:
            return 0.0
        return sum(1 for m in done if m.n_runs == 1) / len(done)

    @property
    def mean_abs_prediction_error(self) -> float:
        """Mean ``|cf - predicted_cf|`` over implemented modules."""
        errs = [abs(m.prediction_error) for m in self.modules if m.feasible]
        return sum(errs) / len(errs) if errs else 0.0

    # ------------------------------------------------------------- export

    def to_json_dict(self) -> dict:
        """Plain-JSON representation (CLI ``--json`` and CI artifacts)."""
        return {
            "n_modules": self.n_modules,
            "n_workers": self.n_workers,
            "wall_s": self.wall_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "total_tool_runs": self.total_tool_runs,
            "new_tool_runs": self.new_tool_runs,
            "n_infeasible": self.n_infeasible,
            "first_run_rate": self.first_run_rate,
            "mean_abs_prediction_error": self.mean_abs_prediction_error,
            "cache": {
                "mem_hits": self.cache.mem_hits,
                "disk_hits": self.cache.disk_hits,
                "misses": self.cache.misses,
                "stores": self.cache.stores,
            },
            "modules": [
                {
                    "module": m.module,
                    "feasible": m.feasible,
                    "cache_hit": m.cache_hit,
                    "n_runs": m.n_runs,
                    "new_runs": m.new_runs,
                    "wall_s": m.wall_s,
                    "cf": m.cf,
                    "predicted_cf": m.predicted_cf,
                }
                for m in self.modules
            ],
        }


@dataclass(frozen=True)
class PreImplResult(Mapping):
    """Pre-implementation of a design: modules, failures and stats.

    Behaves as a read-only mapping from module name to
    :class:`ImplementedModule` (only successfully implemented modules are
    present), so legacy callers that treated ``implement_design``'s return
    value as a dict keep working unchanged.
    """

    modules: dict[str, ImplementedModule]
    report: FlowInfeasibleReport = field(default_factory=FlowInfeasibleReport)
    stats: FlowStats = field(default_factory=FlowStats)

    # ------------------------------------------------------------- mapping

    def __getitem__(self, name: str) -> ImplementedModule:
        return self.modules[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)

    # ------------------------------------------------------------- queries

    @property
    def ok(self) -> bool:
        """True when every module implemented."""
        return not self.report

    def raise_if_infeasible(self) -> None:
        """Abort-on-failure semantics for callers that need them."""
        self.report.raise_if_any()


def implement_module(
    module: RTLModule, grid: DeviceGrid, policy: CFPolicy
) -> ImplementedModule:
    """Synthesize, size and place one module under ``policy``."""
    netlist = opt_design(synthesize(module))
    stats = compute_stats(netlist)
    report = quick_place(stats)
    outcome = policy.choose(stats, report, grid)
    timing = longest_path(stats, outcome.result, outcome.pblock)
    return ImplementedModule(
        stats=stats, report=report, outcome=outcome, timing=timing
    )


def _implement_one(
    args: tuple[RTLModule, DeviceGrid, CFPolicy, bool],
) -> tuple[
    str, ImplementedModule | None, str, tuple[float, ...], int, float, dict | None
]:
    """Worker entry point (module-level so it pickles).

    Returns ``(name, impl, reason, attempted_cfs, fail_runs, wall_s,
    trace)``; ``impl`` is ``None`` exactly when the module is infeasible.
    When ``want_trace`` is set the module's ``preimpl.module`` span tree
    is recorded into a worker-local tracer and shipped back as a plain
    dict, which the parent grafts into its own trace exactly once —
    spans therefore merge identically for any worker count, and for the
    in-process sequential path, which uses the same entry point.
    """
    module, grid, policy, want_trace = args
    tr = Tracer() if want_trace else None
    impl: ImplementedModule | None = None
    reason = ""
    attempted: tuple[float, ...] = ()
    fail_runs = 0
    t0 = time.perf_counter()
    span = tr.span("preimpl.module", module=module.name) if tr else NULL_TRACER.span("")
    with span as sp:
        try:
            impl = implement_module(module, grid, policy)
        except FlowInfeasibleError as exc:
            reason = str(exc)
            attempted = exc.attempted_cfs
            fail_runs = exc.n_runs
            sp.set_attr("feasible", False)
            sp.incr("n_runs", exc.n_runs)
        else:
            sp.set_attr("feasible", True)
            sp.set_attr("cf", impl.outcome.cf)
            sp.incr("n_runs", impl.outcome.n_runs)
    wall = time.perf_counter() - t0
    trace = tr.roots[0].to_json_dict() if tr else None
    return (module.name, impl, reason, attempted, fail_runs, wall, trace)


def implement_design(
    design: BlockDesign,
    grid: DeviceGrid,
    policy: CFPolicy,
    *,
    n_workers: int | None = None,
    cache: ModuleCache | None = None,
    cache_dir: str | None = None,
    tracer: Tracer | NullTracer | None = None,
) -> PreImplResult:
    """Pre-implement every unique module of ``design``.

    Parameters
    ----------
    design:
        The block design; only its unique modules are implemented.
    grid:
        Pre-implementation device (PBlock sizing target).
    policy:
        CF selection policy.
    n_workers:
        Worker processes for the cache misses.  ``None``, 0 or 1 runs
        sequentially in-process; results are identical either way
        (assembled in design order, one deterministic implementation per
        module).  Falls back to sequential when process pools are
        unavailable.
    cache:
        A :class:`~repro.flow.cache.ModuleCache` to consult and populate.
        Sharing one cache across calls (and, with a ``cache_dir``, across
        processes and sessions) is what makes repeated DSE compilations
        cheap.
    cache_dir:
        Convenience: when ``cache`` is not given, build a disk-persistent
        cache rooted here.  Ignored if ``cache`` is provided.
    tracer:
        Where the ``preimpl`` span tree is recorded (cache probe, one
        ``preimpl.module`` span per miss — merged from the workers when
        the misses fan out); defaults to the ambient tracer.  With the
        ambient tracer disabled, a private throwaway tracer provides the
        timings :class:`FlowStats` is derived from.

    Returns
    -------
    PreImplResult
        A name-keyed mapping of implemented modules plus a
        :class:`FlowInfeasibleReport` (infeasible modules no longer raise;
        call :meth:`PreImplResult.raise_if_infeasible` for the old
        behaviour) and :class:`FlowStats`.  Total tool runs of the outcome
        are ``result.stats.total_tool_runs``; runs this call actually
        executed are ``result.stats.new_tool_runs``.
    """
    ambient = tracer if tracer is not None else current_tracer()
    tr = ambient if ambient.enabled else Tracer()
    # Ship per-module span trees through the pool only when someone will
    # read them; the private fallback tracer just times the call.
    want_trace = ambient.enabled

    with tr.span("preimpl", design=design.name) as sp_root:
        with tr.span("preimpl.cache") as sp_cache:
            design.validate()
            if cache is None:
                cache = ModuleCache(cache_dir)

            order = list(design.modules)
            keys = {
                name: cache.key(module, grid, policy)
                for name, module in design.modules.items()
            }

            hits: dict[str, ImplementedModule] = {}
            misses: list[tuple[str, RTLModule]] = []
            for name, module in design.modules.items():
                impl = cache.get(keys[name])
                if impl is not None:
                    hits[name] = impl
                else:
                    misses.append((name, module))
            sp_cache.incr("hits", len(hits))
            sp_cache.incr("misses", len(misses))

        jobs = [(module, grid, policy, want_trace) for _, module in misses]
        effective_workers = 1
        with tr.span("preimpl.implement") as sp_impl:
            if n_workers and n_workers > 1 and len(jobs) > 1:
                try:
                    with ProcessPoolExecutor(
                        max_workers=min(n_workers, len(jobs))
                    ) as pool:
                        # map() preserves job order; each module's
                        # implementation is deterministic, so the assembled
                        # result is independent of the worker count.
                        outcomes = list(pool.map(_implement_one, jobs))
                    effective_workers = min(n_workers, len(jobs))
                except OSError:  # pools unavailable (restricted sandboxes)
                    outcomes = [_implement_one(job) for job in jobs]
            else:
                outcomes = [_implement_one(job) for job in jobs]
            # Exactly one graft per module, whichever path produced the
            # outcome (pool, sequential, or the OSError fallback — the
            # fallback rebuilds `outcomes` wholesale, so nothing attempted
            # by a partially-failed pool is counted twice).
            for out in outcomes:
                tr.graft(out[6])

        implemented: dict[str, ImplementedModule] = {}
        fresh: dict[str, tuple[ImplementedModule, float]] = {}
        failures: dict[str, ModuleFailure] = {}
        fail_wall: dict[str, float] = {}
        for name, impl, reason, attempted, fail_runs, wall, _trace in outcomes:
            if impl is None:
                failures[name] = ModuleFailure(
                    module=name,
                    reason=reason,
                    attempted_cfs=attempted,
                    n_runs=fail_runs,
                )
                fail_wall[name] = wall
            else:
                fresh[name] = (impl, wall)
                cache.put(keys[name], impl)

        per_module: list[ModuleFlowStats] = []
        for name in order:
            if name in hits:
                impl = hits[name]
                implemented[name] = impl
                per_module.append(
                    ModuleFlowStats(
                        module=name,
                        feasible=True,
                        cache_hit=True,
                        n_runs=impl.outcome.n_runs,
                        new_runs=0,
                        wall_s=0.0,
                        cf=impl.outcome.cf,
                        predicted_cf=impl.outcome.predicted_cf,
                    )
                )
            elif name in fresh:
                impl, wall = fresh[name]
                implemented[name] = impl
                per_module.append(
                    ModuleFlowStats(
                        module=name,
                        feasible=True,
                        cache_hit=False,
                        n_runs=impl.outcome.n_runs,
                        new_runs=impl.outcome.n_runs,
                        wall_s=wall,
                        cf=impl.outcome.cf,
                        predicted_cf=impl.outcome.predicted_cf,
                    )
                )
            else:
                f = failures[name]
                per_module.append(
                    ModuleFlowStats(
                        module=name,
                        feasible=False,
                        cache_hit=False,
                        n_runs=f.n_runs,
                        new_runs=f.n_runs,
                        wall_s=fail_wall[name],
                    )
                )

        stats = FlowStats(
            modules=tuple(per_module),
            n_workers=effective_workers,
            wall_s=sp_root.elapsed(),
            cache=CacheStats(
                mem_hits=cache.stats.mem_hits,
                disk_hits=cache.stats.disk_hits,
                misses=cache.stats.misses,
                stores=cache.stats.stores,
            ),
        )
        sp_impl.incr("new_tool_runs", stats.new_tool_runs)
        sp_root.set_attr("n_workers", effective_workers)
        sp_root.incr("total_tool_runs", stats.total_tool_runs)
        sp_root.incr("n_infeasible", stats.n_infeasible)
        m = tr.metrics
        m.counter("preimpl.cache.hits").inc(len(hits))
        m.counter("preimpl.cache.misses").inc(len(misses))
        m.counter("preimpl.tool_runs.new").inc(stats.new_tool_runs)
        m.counter("preimpl.tool_runs.total").inc(stats.total_tool_runs)
        m.gauge("preimpl.n_workers").set(effective_workers)
        for rec in per_module:
            if not rec.cache_hit:
                m.histogram("preimpl.module.wall_s").observe(rec.wall_s)

    report = FlowInfeasibleReport(
        failures=tuple(failures[name] for name in order if name in failures)
    )
    return PreImplResult(modules=implemented, report=report, stats=stats)
