"""Classical (raw-count) features — Table II "Classical"."""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.features.registry import ModuleRecord

__all__ = ["CLASSICAL_FEATURES"]


def _n_lut(r: "ModuleRecord") -> float:
    """Logic LUT count."""
    return float(r.stats.n_lut)


def _n_clbm(r: "ModuleRecord") -> float:
    """Required M-type slices (the paper's CLBM count, §V-A)."""
    return float(math.ceil(r.stats.n_m_lut_sites / 4))


def _n_ff(r: "ModuleRecord") -> float:
    """Flip-flop count."""
    return float(r.stats.n_ff)


def _n_control_sets(r: "ModuleRecord") -> float:
    """Number of distinct control sets (§V-B)."""
    return float(r.stats.n_control_sets)


def _n_carry(r: "ModuleRecord") -> float:
    """Carry cells (CARRY4 segments, §V-C)."""
    return float(r.stats.n_carry4)


def _max_fanout(r: "ModuleRecord") -> float:
    """Maximum signal-net fanout (§V-D)."""
    return float(r.stats.max_fanout)


CLASSICAL_FEATURES: dict[str, Callable[["ModuleRecord"], float]] = {
    "luts": _n_lut,
    "clbms": _n_clbm,
    "ffs": _n_ff,
    "control_sets": _n_control_sets,
    "carry": _n_carry,
    "max_fanout": _max_fanout,
}
