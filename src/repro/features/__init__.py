"""Feature extraction for the CF estimator (paper §V, §VI-B, Fig. 9).

Four feature sets, exactly as evaluated in Table II:

* ``classical`` — raw resource counts: LUTs, CLB-Ms, FFs, control sets,
  carry cells, max fanout;
* ``classical_placement`` ("Classical*") — classical plus the quick
  placement's shape features;
* ``additional`` — the paper's hand-crafted *relative* (size-invariant)
  features: Carry/All, FF/All, LUT/All, M-ratio, PBlock density, control
  sets per FF slice, normalized fanout;
* ``all`` — the union.

``linreg9`` is the nine-input set used by the linear-regression baseline
(§VI-B).
"""

from repro.features.registry import (
    FEATURE_SETS,
    FeatureExtractor,
    ModuleRecord,
    extract_matrix,
    feature_names,
    make_record,
)

__all__ = [
    "FEATURE_SETS",
    "FeatureExtractor",
    "ModuleRecord",
    "extract_matrix",
    "feature_names",
    "make_record",
]
