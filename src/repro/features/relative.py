"""The paper's hand-crafted relative features — Table II "Additional".

These are size-invariant ratios; the paper finds they outperform raw
counts (Fig. 9/10), with Carry/All alone carrying 40-50% of the decision
weight.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.features.registry import ModuleRecord

__all__ = ["RELATIVE_FEATURES"]


def _carry_over_all(r: "ModuleRecord") -> float:
    """Carry cells / all primitive sites (the paper's dominant feature)."""
    return r.stats.n_carry4 / max(1, r.stats.total_sites)


def _ff_over_all(r: "ModuleRecord") -> float:
    """FFs / all primitive sites."""
    return r.stats.n_ff / max(1, r.stats.total_sites)


def _lut_over_all(r: "ModuleRecord") -> float:
    """Logic LUTs / all primitive sites."""
    return r.stats.n_lut / max(1, r.stats.total_sites)


def _m_ratio(r: "ModuleRecord") -> float:
    """Required M slices / estimated total slices (§V-A, §VI-B)."""
    m_slices = math.ceil(r.stats.n_m_lut_sites / 4)
    return m_slices / max(1, r.report.est_slices)


def _density(r: "ModuleRecord") -> float:
    """PBlock density (§V-E): dominant slice demand / summed demands.

    1.0 when a single resource dominates; 1/3 when LUT, FF and carry
    demands are balanced (the congested worst case).
    """
    s = r.stats
    lut_slices = math.ceil(s.n_lut / 4)
    ff_slices = math.ceil(s.n_ff / 8)
    carry_slices = s.n_carry4
    raw = lut_slices + ff_slices + carry_slices
    if raw == 0:
        return 1.0
    return max(lut_slices, ff_slices, carry_slices) / raw


def _cs_per_ff_slice(r: "ModuleRecord") -> float:
    """Control sets per ideal FF slice (§V-B fragmentation pressure)."""
    ff_slices = math.ceil(r.stats.n_ff / 8)
    return r.stats.n_control_sets / max(1, ff_slices)


def _fanout_norm(r: "ModuleRecord") -> float:
    """Max fanout normalized by module size (log scale)."""
    return math.log10(1 + r.stats.max_fanout) / math.log10(10 + r.stats.total_sites)


RELATIVE_FEATURES: dict[str, Callable[["ModuleRecord"], float]] = {
    "carry_over_all": _carry_over_all,
    "ff_over_all": _ff_over_all,
    "lut_over_all": _lut_over_all,
    "m_ratio": _m_ratio,
    "density": _density,
    "cs_per_ff_slice": _cs_per_ff_slice,
    "fanout_norm": _fanout_norm,
}
