"""Placement features from the quick placement's shape report —
Table II "Classical*" extends the classical set with these."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.features.registry import ModuleRecord

__all__ = ["PLACEMENT_FEATURES"]


def _shape_area(r: "ModuleRecord") -> float:
    """Estimated shape area of the quick placement (CLB cells)."""
    return float(r.report.shape_area_clbs)


def _shape_height(r: "ModuleRecord") -> float:
    """Quick-placement height (CLB rows)."""
    return float(r.report.est_height_clbs)


def _min_height(r: "ModuleRecord") -> float:
    """Carry-driven minimum PBlock height (slices, §V-C shape report)."""
    return float(r.report.min_height_clbs)


PLACEMENT_FEATURES: dict[str, Callable[["ModuleRecord"], float]] = {
    "shape_area": _shape_area,
    "shape_height": _shape_height,
    "min_height": _min_height,
}
