"""Feature-set registry and matrix extraction."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.features.classical import CLASSICAL_FEATURES
from repro.features.placement import PLACEMENT_FEATURES
from repro.features.relative import RELATIVE_FEATURES
from repro.netlist.stats import NetlistStats
from repro.place.quick import ShapeReport, quick_place

__all__ = [
    "ModuleRecord",
    "FEATURE_SETS",
    "FeatureExtractor",
    "feature_names",
    "extract_matrix",
    "make_record",
]


@dataclass(frozen=True)
class ModuleRecord:
    """Everything feature extraction may read about one module.

    Attributes
    ----------
    stats:
        Post-synthesis statistics.
    report:
        Quick-placement shape report.
    min_cf:
        Ground-truth minimal CF (``nan`` when unlabeled).
    family:
        Generator family (dataset metadata).
    sweep_step:
        Resolution of the CF sweep that produced ``min_cf``.  Binning
        (balancing, histograms) must quantize on this grid, not on the
        paper's default 0.02 — an adaptive-resolution sweep labels small
        modules at 0.1/0.05 (§VI-C).
    """

    stats: NetlistStats
    report: ShapeReport
    min_cf: float = float("nan")
    family: str = ""
    sweep_step: float = 0.02

    @property
    def name(self) -> str:
        """Module name."""
        return self.stats.name


def make_record(
    stats: NetlistStats,
    report: ShapeReport | None = None,
    min_cf: float = float("nan"),
    family: str = "",
    sweep_step: float = 0.02,
) -> ModuleRecord:
    """Build a record, running the quick placement if not supplied."""
    return ModuleRecord(
        stats=stats,
        report=report if report is not None else quick_place(stats),
        min_cf=min_cf,
        family=family,
        sweep_step=sweep_step,
    )


_ALL_FEATURES: dict[str, Callable[[ModuleRecord], float]] = {
    **CLASSICAL_FEATURES,
    **PLACEMENT_FEATURES,
    **RELATIVE_FEATURES,
}

#: The paper's four evaluated feature sets (Table II) plus the
#: nine-input linear-regression set (§VI-B).
FEATURE_SETS: dict[str, tuple[str, ...]] = {
    "classical": tuple(CLASSICAL_FEATURES),
    "classical_placement": tuple(CLASSICAL_FEATURES) + tuple(PLACEMENT_FEATURES),
    "additional": tuple(RELATIVE_FEATURES),
    "all": tuple(CLASSICAL_FEATURES)
    + tuple(PLACEMENT_FEATURES)
    + tuple(RELATIVE_FEATURES),
    "linreg9": (
        "max_fanout",
        "control_sets",
        "density",
        "m_ratio",
        "carry_over_all",
        "shape_area",
        "shape_height",
        "min_height",
        "cs_per_ff_slice",
    ),
}


def feature_names(feature_set: str) -> tuple[str, ...]:
    """Names of the features in a set (column order of the matrix)."""
    try:
        return FEATURE_SETS[feature_set]
    except KeyError:
        raise KeyError(
            f"unknown feature set {feature_set!r}; known: {sorted(FEATURE_SETS)}"
        ) from None


class FeatureExtractor:
    """Extracts one feature set as a vector/matrix.

    Parameters
    ----------
    feature_set:
        One of :data:`FEATURE_SETS`.
    """

    def __init__(self, feature_set: str) -> None:
        self.feature_set = feature_set
        self.names = feature_names(feature_set)
        self._funcs = [_ALL_FEATURES[n] for n in self.names]

    @property
    def n_features(self) -> int:
        """Vector length."""
        return len(self.names)

    def vector(self, record: ModuleRecord) -> np.ndarray:
        """Feature vector of one module."""
        return np.array([f(record) for f in self._funcs], dtype=np.float64)

    def matrix(self, records: Sequence[ModuleRecord]) -> np.ndarray:
        """``(n_samples, n_features)`` matrix."""
        if not records:
            return np.empty((0, self.n_features))
        return np.vstack([self.vector(r) for r in records])


def extract_matrix(
    records: Sequence[ModuleRecord], feature_set: str
) -> tuple[np.ndarray, np.ndarray]:
    """Convenience: feature matrix + label vector for labeled records."""
    ex = FeatureExtractor(feature_set)
    X = ex.matrix(records)
    y = np.array([r.min_cf for r in records], dtype=np.float64)
    return X, y
