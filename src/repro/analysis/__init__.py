"""Experiment drivers: one entry point per table/figure of the paper.

Each ``run_*`` function returns a small result dataclass and can render
the same rows/series the paper reports.  :class:`ExperimentContext` caches
the expensive shared inputs (the labeled dataset, the cnvW1A1 design and
its per-module CF labels) within a process so the benchmark suite doesn't
regenerate them per experiment.
"""

from repro.analysis.context import ExperimentContext, default_context
from repro.analysis.exp_cnv_estimator import (
    run_estimator_impact,
    run_fig11_cnv_estimation,
    run_fig12_cnv_importance,
)
from repro.analysis.exp_cv import run_cv_study
from repro.analysis.exp_dataset import run_fig7_coverage, run_fig8_balance
from repro.analysis.exp_incremental import run_incremental_study
from repro.analysis.exp_noise import run_noise_study
from repro.analysis.exp_transfer import run_transfer_study
from repro.analysis.exp_estimators import (
    run_fig9_importance,
    run_fig10_pred_vs_actual,
    run_table2_errors,
)
from repro.analysis.exp_fig45 import run_fig4_cf_distribution, run_fig5_placement
from repro.analysis.exp_resolution import run_resolution_study
from repro.analysis.exp_table1 import run_fig3_footprints, run_table1

__all__ = [
    "ExperimentContext",
    "default_context",
    "run_cv_study",
    "run_estimator_impact",
    "run_fig10_pred_vs_actual",
    "run_fig11_cnv_estimation",
    "run_fig12_cnv_importance",
    "run_fig3_footprints",
    "run_fig4_cf_distribution",
    "run_fig5_placement",
    "run_fig7_coverage",
    "run_fig8_balance",
    "run_fig9_importance",
    "run_incremental_study",
    "run_noise_study",
    "run_resolution_study",
    "run_table1",
    "run_table2_errors",
    "run_transfer_study",
]
