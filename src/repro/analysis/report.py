"""Full experiment report generator.

Runs every table/figure driver and emits a Markdown report with
paper-vs-measured values — the content of ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import io
import time

from repro.analysis.context import ExperimentContext
from repro.analysis.exp_cnv_estimator import (
    run_estimator_impact,
    run_fig11_cnv_estimation,
    run_fig12_cnv_importance,
)
from repro.analysis.exp_cv import run_cv_study
from repro.analysis.exp_dataset import run_fig7_coverage, run_fig8_balance
from repro.analysis.exp_incremental import run_incremental_study
from repro.analysis.exp_noise import run_noise_study
from repro.analysis.exp_transfer import run_transfer_study
from repro.analysis.exp_estimators import (
    run_fig9_importance,
    run_fig10_pred_vs_actual,
    run_table2_errors,
)
from repro.analysis.exp_fig45 import run_fig4_cf_distribution, run_fig5_placement
from repro.analysis.exp_resolution import run_resolution_study
from repro.analysis.exp_table1 import run_fig3_footprints, run_table1
from repro.flow.stitcher import SAParams

__all__ = ["generate_report"]


def generate_report(
    ctx: ExperimentContext, sa_params: SAParams | None = None
) -> str:
    """Run all experiments and return a Markdown report."""
    sa = sa_params or SAParams(max_iters=40000, seed=ctx.seed)
    out = io.StringIO()
    t_start = time.perf_counter()

    def section(title: str) -> None:
        out.write(f"\n## {title}\n\n")

    def block(text: str) -> None:
        out.write("```\n" + text + "\n```\n")

    out.write(
        "# EXPERIMENTS — paper vs measured\n\n"
        f"Configuration: {ctx.n_modules} dataset modules, balancing cap "
        f"{ctx.cap_per_bin}/bin, RF {ctx.rf_trees} trees, SA budget "
        f"{sa.max_iters} iterations, seed {ctx.seed}.\n\n"
        "Absolute values come from the simulation substrate (see DESIGN.md"
        " and docs/modeling.md, which also records the known deviations);"
        " the reproduced quantity is each claim's *shape*.\n"
    )

    # ---------------------------------------------------------------- T1/F3
    section("Table I — block implementation (slices / longest path)")
    t1 = run_table1(ctx)
    block(t1.render())
    rows = {r.module: r for r in t1.rows}
    w14, m18 = rows["weights_14"], rows["mvau_18"]
    out.write(
        "\nPaper: `mvau_18` 31 / 28 slices (CF 1.5 / min) vs 30,34,32,29 flat;"
        " `weights_14` 1529 / 1371 vs 1430; flat flow at 99.98% utilization;"
        " tighter PBlocks are slower.\n"
        f"\nMeasured: `mvau_18` {m18.slices_cf15} / {m18.slices_min} vs "
        f"{','.join(map(str, m18.slices_amd))}; `weights_14` "
        f"{w14.slices_cf15} / {w14.slices_min} vs "
        f"{','.join(map(str, w14.slices_amd))}; flat flow at "
        f"{t1.amd_utilization * 100:.2f}%; timing "
        f"{w14.path_cf15_ns:.2f} -> {w14.path_min_ns:.2f} ns. "
        "Orderings match on every axis.\n"
    )

    section("Fig. 3 — footprint regularity (CF 1.5 vs minimal)")
    for f3 in run_fig3_footprints(ctx):
        out.write(f"- {f3.render()}\n")
    out.write(
        "\nPaper: constant CF 1.5 yields irregular shapes; the smallest "
        "feasible PBlock makes placements more rectangular.\n"
    )

    # ---------------------------------------------------------------- F4/F5
    section("Fig. 4 — optimal-CF distribution over cnvW1A1 blocks")
    f4 = run_fig4_cf_distribution(ctx)
    block(f4.render())
    out.write(
        f"\nPaper: values below 0.7 exist (BRAM-driven/tiny blocks); max "
        f"1.68. Measured: min {f4.min_cf:.2f}, max {f4.max_cf:.2f}, "
        f"{f4.n_below_07} blocks below 0.7.\n"
    )

    section("Fig. 5 — full placement (flat vs RW const-CF vs RW min-CF)")
    f5 = run_fig5_placement(ctx, sa)
    block(f5.render())
    out.write(
        "\nPaper: flat places all 175 at 99.98%; RW leaves 68 (CF=1.68) vs "
        "52 (min CF) unplaced — ~15% more placed blocks with minimal CFs.\n"
        f"Measured: {f5.const_unplaced} vs {f5.minimal_unplaced} unplaced "
        f"({f5.placed_improvement * 100:.1f}% more placed). The simulated "
        "stitcher packs less densely than RapidWright's, so absolute "
        "unplaced counts are higher on both sides; the relative gain and "
        "its direction match.\n"
    )

    # ---------------------------------------------------------------- F7/F8
    section("Fig. 7 — dataset design-space coverage")
    block(run_fig7_coverage(ctx).render())
    out.write("\nPaper: ~2,000 modules, largest ~5,000 LUTs (11% of device).\n")

    section("Fig. 8 — balanced CF distribution")
    f8 = run_fig8_balance(ctx)
    block(f8.render())
    out.write(
        f"\nPaper: cap 75/bin shrinks 2,000 -> ~1,500 samples over CF "
        f"0.9-1.7. Measured: {f8.n_raw} -> {f8.n_balanced} over "
        f"[{f8.cf_min:.2f}, {f8.cf_max:.2f}].\n"
    )

    # ---------------------------------------------------------------- T2/F9/F10
    section("Table II — estimator errors per feature set")
    t2 = run_table2_errors(ctx)
    block(t2.render())
    out.write(
        "\nPaper (%): DT 7.4/7.4/5.4/5.2; RF 6.2/5.9/4.8/4.9; NN 5.1 (all);"
        " linreg 9.4. Shapes reproduced: relative features beat raw counts,"
        " RF <= DT, placement features don't help, NN comparable. Our "
        "absolute errors are somewhat lower and the linreg gap smaller — "
        "the simulated ground truth is smoother than Vivado's.\n"
    )

    section("Fig. 9 — DT feature importance per feature set")
    f9 = run_fig9_importance(ctx)
    block(f9.render())
    top_add = f9.top_feature("additional")
    out.write(
        f"\nPaper: Carry/All carries 0.5 within Additional, 0.4 within All."
        f" Measured top Additional feature: {top_add[0]} at {top_add[1]:.2f}.\n"
    )

    section("Fig. 10 — predicted vs actual CF")
    block(run_fig10_pred_vs_actual(ctx).render())
    out.write(
        "\nPaper: classical features degrade at high CFs; relative features"
        " stay accurate there.\n"
    )

    # ---------------------------------------------------------------- F11/F12
    section("Fig. 11 — cnvW1A1 as test set (transfer)")
    f11 = run_fig11_cnv_estimation(ctx)
    block(f11.render())
    out.write(
        "\nPaper: linreg median abs err 11.03%, NN 9.5%, 31.75% of "
        "estimates within 4%.\n"
    )

    section("Fig. 12 — RF importance, cnvW1A1 test")
    block(run_fig12_cnv_importance(ctx).render())

    # ---------------------------------------------------------------- §VIII
    section("Fig. 13 / §VIII — estimator impact on the flow")
    imp = run_estimator_impact(ctx, sa)
    block(imp.render())
    out.write(
        "\nPaper: 52.7% first-run success; 1.8x fewer tool runs than the "
        "CF=0.9 sweep; SA 1.37x faster and 40% cheaper than constant "
        "CF=1.68 on the xc7z045.\n"
        f"Measured: {imp.first_run_rate * 100:.1f}% / "
        f"{imp.runs_ratio:.2f}x / {imp.convergence_speedup:.2f}x / "
        f"{imp.cost_reduction * 100:.0f}%.\n"
    )

    # ---------------------------------------------------------------- §VI-C
    section("§VI-C — search-step resolution ablation")
    block(run_resolution_study(ctx).render())
    out.write(
        "\nPaper: <100-LUT modules need no step below 0.1; ~2,500-LUT "
        "modules need <=0.03; 85% of the dataset is under 2,500 LUTs.\n"
    )

    # ---------------------------------------------------------- extensions
    out.write("\n# Extensions beyond the paper\n")

    section("Incremental recompilation (the §I motivation, quantified)")
    block(run_incremental_study(ctx).render())

    section("K-fold cross-validation of the Table II conclusion")
    cv = run_cv_study(ctx, k=5)
    block(cv.render())
    out.write(
        "\nThe relative-features conclusion holds on fold means "
        f"(RF additional {cv.rf['additional'][0] * 100:.1f}% vs classical "
        f"{cv.rf['classical'][0] * 100:.1f}%).\n"
    )

    section("Placer-noise sensitivity (error decomposition)")
    block(run_noise_study(ctx).render())

    section("Cross-device transfer (xc7z020 -> xc7z010)")
    block(run_transfer_study(ctx).render())

    section("Second workload: tfcW1A1 generalization")
    from repro.cnv.tfc import tfc_design
    from repro.flow.policy import FixedCF, MinimalCFPolicy
    from repro.flow.preimpl import implement_design
    from repro.flow.rwflow import run_rw_flow

    tfc = tfc_design()
    impls = implement_design(tfc, ctx.z010, MinimalCFPolicy())
    tfc_cf_max = max(i.outcome.cf for i in impls.values())
    tfc_const = run_rw_flow(
        tfc, ctx.z010, FixedCF(round(tfc_cf_max + 1e-9, 2)), sa_params=sa
    )
    tfc_min = run_rw_flow(tfc, ctx.z010, MinimalCFPolicy(), sa_params=sa)
    out.write(
        f"tfcW1A1 (33 instances / 21 modules) on the xc7z010: constant "
        f"CF={tfc_cf_max:.2f} places {tfc_const.stitch.n_placed}/33 with "
        f"{tfc_const.total_pblock_slices} reserved slices; minimal CFs "
        f"place {tfc_min.stitch.n_placed}/33 with "
        f"{tfc_min.total_pblock_slices} — the paper's transferability "
        "claim holds on a weight-dominated FC network.\n"
    )

    out.write(
        f"\n---\nGenerated in {time.perf_counter() - t_start:.0f}s by "
        "`python -m repro report`.\n"
    )
    return out.getvalue()
