"""Noise-sensitivity ablation: how much of the estimator's residual error
is irreducible placer irregularity?

The packer's deterministic per-module noise models what a real placer
does that no aggregate feature can predict.  Sweeping its amplitude and
retraining shows the estimator error decomposes into a learnable part
(fragmentation/density/fanout mechanics) and a noise floor — context for
the paper's ~5% best error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.context import ExperimentContext
from repro.dataset.balance import balance_dataset
from repro.dataset.generate import generate_dataset
from repro.features.registry import extract_matrix
from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import mean_relative_error
from repro.ml.split import train_test_split
from repro.place.packer import placer_noise_amplitude
from repro.utils.tables import Table

__all__ = ["NoiseStudyResult", "run_noise_study"]

_AMPLITUDES = (0.0, 0.03, 0.07, 0.15)


@dataclass(frozen=True)
class NoiseStudyResult:
    """RF test error per placer-noise amplitude."""

    errors: dict[float, float]
    n_samples: dict[float, int]

    def render(self) -> str:
        t = Table(
            ["noise amplitude", "samples", "RF relative error %"],
            float_fmt="{:.2f}",
            title="placer-noise sensitivity of the CF estimator",
        )
        for amp, err in self.errors.items():
            t.add_row([amp, self.n_samples[amp], err * 100])
        return t.render()

    def noise_floor(self) -> float:
        """Error at zero noise — the learnable-mechanics residual."""
        return self.errors[0.0]


def run_noise_study(
    ctx: ExperimentContext, n_modules: int | None = None, rf_trees: int | None = None
) -> NoiseStudyResult:
    """Regenerate + relabel the dataset at several noise amplitudes and
    measure the RF (additional features) test error at each."""
    n_modules = n_modules or max(200, ctx.n_modules // 4)
    rf_trees = rf_trees or max(20, ctx.rf_trees // 4)
    errors: dict[float, float] = {}
    counts: dict[float, int] = {}
    for amp in _AMPLITUDES:
        with placer_noise_amplitude(amp):
            records, _ = generate_dataset(n_modules, seed=ctx.seed, grid=ctx.z020)
            balanced = balance_dataset(records, cap_per_bin=ctx.cap_per_bin,
                                       seed=ctx.seed)
        X, y = extract_matrix(balanced, "additional")
        tr, te = train_test_split(len(y), 0.2, seed=ctx.seed)
        rf = RandomForestRegressor(
            n_estimators=rf_trees, max_depth=20, seed=ctx.seed
        ).fit(X[tr], y[tr])
        errors[amp] = mean_relative_error(y[te], rf.predict(X[te]))
        counts[amp] = len(balanced)
    return NoiseStudyResult(errors=errors, n_samples=counts)
