"""Fig. 4 (optimal-CF distribution) and Fig. 5 (full placement comparison)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.context import ExperimentContext
from repro.dataset.balance import cf_histogram
from repro.flow.monolithic import monolithic_flow
from repro.flow.policy import FixedCF, MinimalCFPolicy
from repro.flow.rwflow import RWFlowResult, run_rw_flow
from repro.flow.stitcher import SAParams
from repro.utils.tables import Table

__all__ = [
    "Fig4Result",
    "Fig5Result",
    "run_fig4_cf_distribution",
    "run_fig5_placement",
]


@dataclass(frozen=True)
class Fig4Result:
    """Distribution of the optimal CF over the cnvW1A1 modules.

    The paper observes values below 0.7 (tiny or BRAM-driven modules) and
    a maximum of 1.68; the maximum is what a constant-CF user must set.
    """

    histogram: dict[float, int]
    min_cf: float
    max_cf: float
    n_below_07: int

    def render(self) -> str:
        from repro.utils.plots import ascii_histogram

        bars = ascii_histogram(
            self.histogram, title="Fig. 4: optimal CF distribution (cnvW1A1)"
        )
        return (
            bars
            + f"\nmin={self.min_cf:.2f} max={self.max_cf:.2f} "
            f"blocks below 0.7: {self.n_below_07}"
        )


def run_fig4_cf_distribution(ctx: ExperimentContext) -> Fig4Result:
    """Minimal feasible CF of every cnvW1A1 module at 0.02 resolution,
    searching below 0.9 as the paper did."""
    records = ctx.cnv_records()
    cfs = [r.min_cf for r in records]
    return Fig4Result(
        histogram=cf_histogram(records),
        min_cf=min(cfs),
        max_cf=max(cfs),
        n_below_07=sum(1 for c in cfs if c < 0.7),
    )


@dataclass(frozen=True)
class Fig5Result:
    """Placement comparison: flat flow vs RW at constant and minimal CF."""

    amd_utilization: float
    amd_placed: bool
    const_cf: float
    const_unplaced: int
    minimal_unplaced: int
    n_instances: int
    const_flow: RWFlowResult
    minimal_flow: RWFlowResult

    @property
    def placed_improvement(self) -> float:
        """Relative gain in placed blocks of minimal CF over constant CF
        (the paper reports ~15%)."""
        placed_const = self.n_instances - self.const_unplaced
        placed_min = self.n_instances - self.minimal_unplaced
        return placed_min / placed_const - 1.0 if placed_const else 0.0

    def render(self) -> str:
        t = Table(["flow", "placed", "unplaced"], title="Fig. 5: cnvW1A1 placement")
        t.add_row(
            [
                "AMD EDA (flat)",
                self.n_instances if self.amd_placed else "-",
                0 if self.amd_placed else "-",
            ]
        )
        t.add_row(
            [
                f"RW, constant CF={self.const_cf:.2f}",
                self.n_instances - self.const_unplaced,
                self.const_unplaced,
            ]
        )
        t.add_row(
            [
                "RW, minimal CF",
                self.n_instances - self.minimal_unplaced,
                self.minimal_unplaced,
            ]
        )
        return (
            t.render()
            + f"\nflat-flow utilization {self.amd_utilization * 100:.2f}%, "
            f"minimal CF places {self.placed_improvement * 100:.1f}% more blocks"
        )


def run_fig5_placement(
    ctx: ExperimentContext, sa_params: SAParams | None = None
) -> Fig5Result:
    """Reproduce Fig. 5: the flat flow fits the device; RW with the
    constant worst-case CF leaves the most blocks unplaced; per-module
    minimal CFs recover a substantial share."""
    design = ctx.design()
    grid = ctx.z020
    mono = monolithic_flow(design, grid)
    # The constant CF must cover every module: the max of Fig. 4
    # (paper: 1.68).
    const_cf = max(r.min_cf for r in ctx.cnv_records())
    sa = sa_params or SAParams(max_iters=30000, seed=ctx.seed)
    const_flow = run_rw_flow(design, grid, FixedCF(round(const_cf + 1e-9, 2)), sa_params=sa)
    minimal_flow = run_rw_flow(design, grid, MinimalCFPolicy(), sa_params=sa)
    return Fig5Result(
        amd_utilization=mono.utilization,
        amd_placed=mono.placed,
        const_cf=const_cf,
        const_unplaced=const_flow.stitch.n_unplaced,
        minimal_unplaced=minimal_flow.stitch.n_unplaced,
        n_instances=design.n_instances,
        const_flow=const_flow,
        minimal_flow=minimal_flow,
    )
