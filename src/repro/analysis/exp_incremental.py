"""Incremental-recompilation study (the paper's §I motivation).

The reason pre-implemented-block flows exist: during design-space
exploration, an NN architecture change touches a few modules, and a
RapidWright-style flow only re-implements those, while a monolithic flow
recompiles the whole design.  This experiment modifies one cnvW1A1 layer
(a new MVAU folding for layer 5), recompiles under both flows and
compares the implementation effort.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.context import ExperimentContext
from repro.cnv.blocks import build_block
from repro.flow.blockdesign import BlockDesign
from repro.flow.policy import CFPolicy, FixedCF
from repro.flow.preimpl import ImplementedModule, implement_module
from repro.utils.tables import Table

__all__ = ["IncrementalResult", "run_incremental_study", "modify_module"]


def modify_module(design: BlockDesign, module: str, new_scale: float) -> BlockDesign:
    """Clone ``design`` with one module's configuration changed.

    Models one DSE step: the block keeps its interface (instances and
    edges are preserved) but its implementation differs, so its cached
    pre-implementation is invalid.
    """
    if module not in design.modules:
        raise KeyError(f"unknown module {module!r}")
    old = design.modules[module]
    family = old.family.split("_", 1)[-1] if old.family.startswith("cnv_") else None
    if family is None:
        raise ValueError(f"{module} is not a cnv block")
    clone = BlockDesign(name=design.name + "+mod")
    for name, mod in design.modules.items():
        if name == module:
            clone.add_module(build_block(family, name, new_scale))
        else:
            clone.add_module(mod)
    for inst in design.instances:
        clone.add_instance(inst.name, inst.module)
    for e in design.edges:
        clone.connect(e.src, e.dst, width=e.width)
    return clone


@dataclass(frozen=True)
class IncrementalResult:
    """Effort comparison for one design change.

    "Effort" is the sum of implemented module slice demands — a proxy for
    place-and-route runtime that is independent of the host machine.
    """

    changed_modules: tuple[str, ...]
    full_effort: int
    incremental_effort: int
    full_runs: int
    incremental_runs: int

    @property
    def effort_speedup(self) -> float:
        """Full recompilation effort / incremental effort."""
        return (
            self.full_effort / self.incremental_effort
            if self.incremental_effort
            else float("inf")
        )

    @property
    def reuse_fraction(self) -> float:
        """Share of implementation effort served from the cache."""
        return 1.0 - self.incremental_effort / self.full_effort

    def render(self) -> str:
        t = Table(["flow", "modules implemented", "effort (slices)"],
                  title="incremental recompilation after one layer change")
        t.add_row(["monolithic (recompile all)", self.full_runs, self.full_effort])
        t.add_row(
            ["RW-style (cache hit)", self.incremental_runs, self.incremental_effort]
        )
        return (
            t.render()
            + f"\nchanged: {', '.join(self.changed_modules)} | "
            f"effort speedup {self.effort_speedup:.1f}x, "
            f"reuse {self.reuse_fraction * 100:.1f}%"
        )


def run_incremental_study(
    ctx: ExperimentContext,
    module: str = "mvau_12",
    new_scale: float = 2.4,
    policy: CFPolicy | None = None,
) -> IncrementalResult:
    """Change one cnvW1A1 module and compare recompilation effort."""
    policy = policy or FixedCF(1.7)
    base = ctx.design()
    changed = modify_module(base, module, new_scale)

    # Pre-implement the base design once — this is the cache.
    cache: dict[str, ImplementedModule] = {}
    full_effort = 0
    for name, _mod in changed.modules.items():
        if name != module:
            # Unchanged modules: the cached implementation of the base
            # design is reused verbatim.
            cache[name] = implement_module(base.modules[name], ctx.z020, policy)
            full_effort += cache[name].outcome.result.demand_slices

    impl_new = implement_module(changed.modules[module], ctx.z020, policy)
    new_effort = impl_new.outcome.result.demand_slices
    full_effort += new_effort

    return IncrementalResult(
        changed_modules=(module,),
        full_effort=full_effort,
        incremental_effort=new_effort,
        full_runs=changed.n_unique,
        incremental_runs=1,
    )
