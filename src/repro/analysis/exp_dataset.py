"""Fig. 7 (design-space coverage) and Fig. 8 (balanced CF distribution)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import ExperimentContext
from repro.dataset.balance import cf_histogram
from repro.utils.tables import Table

__all__ = ["Fig7Result", "Fig8Result", "run_fig7_coverage", "run_fig8_balance"]


@dataclass(frozen=True)
class Fig7Result:
    """Coverage of the (LUT, FF, carry) design space by the RTL dataset."""

    n_modules: int
    max_luts: int
    max_ffs: int
    max_carry: int
    lut_quartiles: tuple[float, float, float]
    ff_quartiles: tuple[float, float, float]
    carry_quartiles: tuple[float, float, float]
    family_counts: dict[str, int]

    def render(self) -> str:
        t = Table(
            ["axis", "q25", "median", "q75", "max"],
            title="Fig. 7: dataset design-space coverage",
        )
        t.add_row(["LUTs", *self.lut_quartiles, self.max_luts])
        t.add_row(["FFs", *self.ff_quartiles, self.max_ffs])
        t.add_row(["Carry", *self.carry_quartiles, self.max_carry])
        fams = ", ".join(f"{k}={v}" for k, v in sorted(self.family_counts.items()))
        return t.render() + f"\n{self.n_modules} modules; families: {fams}"


def run_fig7_coverage(ctx: ExperimentContext) -> Fig7Result:
    """Summarize the generated dataset's resource-usage spread.

    The paper's dataset tops out around 5,000 LUTs (11% of the device)
    because RW's speed-ups come from small, highly reused blocks.
    """
    records, _ = ctx.dataset()
    luts = np.array([r.stats.n_lut for r in records])
    ffs = np.array([r.stats.n_ff for r in records])
    carry = np.array([r.stats.n_carry4 for r in records])

    def q(a: np.ndarray) -> tuple[float, float, float]:
        if a.size == 0:
            return (0.0, 0.0, 0.0)
        return tuple(float(np.percentile(a, p)) for p in (25, 50, 75))

    fams: dict[str, int] = {}
    for r in records:
        fams[r.family] = fams.get(r.family, 0) + 1
    return Fig7Result(
        n_modules=len(records),
        max_luts=int(luts.max()) if luts.size else 0,
        max_ffs=int(ffs.max()) if ffs.size else 0,
        max_carry=int(carry.max()) if carry.size else 0,
        lut_quartiles=q(luts),
        ff_quartiles=q(ffs),
        carry_quartiles=q(carry),
        family_counts=fams,
    )


@dataclass(frozen=True)
class Fig8Result:
    """CF distribution before and after balancing (cap = 75/bin)."""

    n_raw: int
    n_balanced: int
    cap_per_bin: int
    raw_histogram: dict[float, int]
    balanced_histogram: dict[float, int]
    cf_min: float
    cf_max: float

    def render(self) -> str:
        t = Table(
            ["CF", "raw", "balanced"],
            title="Fig. 8: input-data distribution over the correction factor",
        )
        for cf in sorted(set(self.raw_histogram) | set(self.balanced_histogram)):
            t.add_row(
                [
                    f"{cf:.2f}",
                    self.raw_histogram.get(cf, 0),
                    self.balanced_histogram.get(cf, 0),
                ]
            )
        return (
            t.render()
            + f"\n{self.n_raw} -> {self.n_balanced} samples "
            f"(cap {self.cap_per_bin}/bin), CF in [{self.cf_min:.2f}, {self.cf_max:.2f}]"
        )


def run_fig8_balance(ctx: ExperimentContext) -> Fig8Result:
    """Reproduce the paper's 2,000 -> ~1,500 balancing step."""
    records, _ = ctx.dataset()
    balanced = ctx.balanced()
    cfs = [r.min_cf for r in balanced]
    return Fig8Result(
        n_raw=len(records),
        n_balanced=len(balanced),
        cap_per_bin=ctx.cap_per_bin,
        raw_histogram=cf_histogram(records),
        balanced_histogram=cf_histogram(balanced),
        cf_min=min(cfs),
        cf_max=max(cfs),
    )
