"""Table II (estimator errors), Fig. 9 (DT feature importance) and
Fig. 10 (predicted vs actual CF per feature set)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import ExperimentContext
from repro.estimator.cf_estimator import CFEstimator
from repro.features.registry import extract_matrix, feature_names
from repro.ml.metrics import mean_relative_error
from repro.ml.split import train_test_split
from repro.utils.tables import Table

__all__ = [
    "Table2Result",
    "Fig9Result",
    "Fig10Result",
    "run_table2_errors",
    "run_fig9_importance",
    "run_fig10_pred_vs_actual",
]

#: Feature sets of Table II, in column order.
TABLE2_SETS = ("classical", "classical_placement", "additional", "all")


def _split(ctx: ExperimentContext) -> tuple[np.ndarray, np.ndarray]:
    balanced = ctx.balanced()
    return train_test_split(len(balanced), test_fraction=0.2, seed=ctx.seed)


@dataclass(frozen=True)
class Table2Result:
    """Relative test errors of the four estimators per feature set."""

    dt_errors: dict[str, float]
    rf_errors: dict[str, float]
    nn_error_all: float
    linreg_error: float
    n_train: int
    n_test: int

    def render(self) -> str:
        t = Table(
            ["Features", "Classical", "Classical*", "Additional", "All"],
            float_fmt="{:.1f}",
            title="Table II: relative error of the proposed estimators (%)",
        )
        t.add_row(
            ["Decision Tree"] + [self.dt_errors[s] * 100 for s in TABLE2_SETS]
        )
        t.add_row(
            ["Random Forest"] + [self.rf_errors[s] * 100 for s in TABLE2_SETS]
        )
        t.add_row(["Neural Network", None, None, None, self.nn_error_all * 100])
        return (
            t.render()
            + f"\nLinear regression (9 inputs): {self.linreg_error * 100:.1f}% | "
            f"train/test = {self.n_train}/{self.n_test}"
        )


def run_table2_errors(ctx: ExperimentContext) -> Table2Result:
    """Reproduce Table II: DT/RF across all feature sets, NN on all
    features, and the linear-regression baseline."""
    balanced = ctx.balanced()
    tr, te = _split(ctx)
    train = [balanced[i] for i in tr]
    test = [balanced[i] for i in te]
    y_test = np.array([r.min_cf for r in test])

    dt_errors: dict[str, float] = {}
    rf_errors: dict[str, float] = {}
    for fs in TABLE2_SETS:
        dt = CFEstimator(kind="dt", feature_set=fs, seed=ctx.seed).fit(train)
        dt_errors[fs] = mean_relative_error(y_test, dt.predict_many(test))
        rf = CFEstimator(
            kind="rf", feature_set=fs, seed=ctx.seed, rf_trees=ctx.rf_trees
        ).fit(train)
        rf_errors[fs] = mean_relative_error(y_test, rf.predict_many(test))

    nn = CFEstimator(kind="nn", feature_set="all", seed=ctx.seed).fit(train)
    nn_error = mean_relative_error(y_test, nn.predict_many(test))

    lin = CFEstimator(kind="linreg", feature_set="linreg9", seed=ctx.seed).fit(train)
    lin_error = mean_relative_error(y_test, lin.predict_many(test))

    return Table2Result(
        dt_errors=dt_errors,
        rf_errors=rf_errors,
        nn_error_all=nn_error,
        linreg_error=lin_error,
        n_train=len(train),
        n_test=len(test),
    )


@dataclass(frozen=True)
class Fig9Result:
    """DT impurity importances per feature set (sums to 1 per set)."""

    importances: dict[str, dict[str, float]]

    def render(self) -> str:
        lines = ["Fig. 9: DT feature importance per feature set"]
        for fs, imps in self.importances.items():
            ranked = sorted(imps.items(), key=lambda kv: -kv[1])
            row = ", ".join(f"{n}={v:.2f}" for n, v in ranked if v > 0.01)
            lines.append(f"  {fs}: {row}")
        return "\n".join(lines)

    def top_feature(self, feature_set: str) -> tuple[str, float]:
        """Most important feature of one set."""
        imps = self.importances[feature_set]
        name = max(imps, key=imps.get)
        return name, imps[name]


def run_fig9_importance(ctx: ExperimentContext) -> Fig9Result:
    """Reproduce Fig. 9: relative features dominate; Carry/All is the
    single strongest signal (paper: 0.5 within "additional", 0.4 within
    "all")."""
    balanced = ctx.balanced()
    tr, _ = _split(ctx)
    train = [balanced[i] for i in tr]
    importances: dict[str, dict[str, float]] = {}
    for fs in TABLE2_SETS:
        dt = CFEstimator(kind="dt", feature_set=fs, seed=ctx.seed).fit(train)
        importances[fs] = dict(
            zip(feature_names(fs), (float(v) for v in dt.feature_importances_))
        )
    return Fig9Result(importances=importances)


@dataclass(frozen=True)
class Fig10Result:
    """Predicted vs actual CF on the test set, per feature set (RF)."""

    actual: np.ndarray
    predictions: dict[str, np.ndarray]

    def high_cf_error(self, feature_set: str, threshold: float = 1.4) -> float:
        """Mean relative error restricted to high CFs — the region where
        the paper observes classical features fail."""
        mask = self.actual >= threshold
        if not mask.any():
            return float("nan")
        return mean_relative_error(
            self.actual[mask], self.predictions[feature_set][mask]
        )

    def render(self) -> str:
        from repro.utils.plots import ascii_scatter

        t = Table(
            ["feature set", "overall err %", "err % @ CF>=1.4"],
            float_fmt="{:.1f}",
            title="Fig. 10: predicted vs actual CF (RF, test set)",
        )
        for fs, pred in self.predictions.items():
            t.add_row(
                [
                    fs,
                    mean_relative_error(self.actual, pred) * 100,
                    self.high_cf_error(fs) * 100,
                ]
            )
        scatter = ascii_scatter(
            list(self.actual),
            list(self.predictions["additional"]),
            diagonal=True,
            title='predicted (y) vs actual (x) CF, "additional" features '
            "(diagonal = perfect)",
        )
        return t.render() + "\n\n" + scatter


def run_fig10_pred_vs_actual(ctx: ExperimentContext) -> Fig10Result:
    """Reproduce Fig. 10's series: per-feature-set predictions against the
    true minimal CF, highlighting the high-CF region."""
    balanced = ctx.balanced()
    tr, te = _split(ctx)
    train = [balanced[i] for i in tr]
    test = [balanced[i] for i in te]
    _, y_test = extract_matrix(test, "all")
    preds: dict[str, np.ndarray] = {}
    for fs in TABLE2_SETS:
        rf = CFEstimator(
            kind="rf", feature_set=fs, seed=ctx.seed, rf_trees=ctx.rf_trees
        ).fit(train)
        preds[fs] = rf.predict_many(test)
    return Fig10Result(actual=y_test, predictions=preds)
