"""Figs. 11-13 and the §VIII metrics: the estimator applied to cnvW1A1.

* Fig. 11 — linear-regression (and NN) predictions on the 63 non-trivial
  cnvW1A1 modules, median absolute error;
* Fig. 12 — RF feature importance with cnvW1A1 as the test set;
* Fig. 13 / §VIII — flow impact: first-run success rate, tool runs vs the
  constant CF=0.9 baseline, SA convergence speed-up and final-cost drop vs
  constant CF=1.68 on the xc7z045.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.context import ExperimentContext
from repro.estimator.cf_estimator import CFEstimator
from repro.estimator.strategy import EstimatedCF
from repro.features.registry import feature_names
from repro.flow.policy import FixedCF, SweepCF
from repro.flow.preimpl import implement_design
from repro.flow.rwflow import RWFlowResult
from repro.flow.stitcher import SAParams, stitch
from repro.ml.metrics import median_absolute_relative_error
from repro.utils.tables import Table

__all__ = [
    "Fig11Result",
    "Fig12Result",
    "EstimatorImpactResult",
    "run_fig11_cnv_estimation",
    "run_fig12_cnv_importance",
    "run_estimator_impact",
]


@dataclass(frozen=True)
class Fig11Result:
    """Actual vs estimated CF on the cnvW1A1 modules (transfer test)."""

    actual: np.ndarray
    linreg_pred: np.ndarray
    nn_pred: np.ndarray
    n_modules: int

    @property
    def linreg_median_err(self) -> float:
        """Median absolute relative error of linreg (paper: 11.03%)."""
        return median_absolute_relative_error(self.actual, self.linreg_pred)

    @property
    def nn_median_err(self) -> float:
        """Median absolute relative error of the NN (paper: 9.5%)."""
        return median_absolute_relative_error(self.actual, self.nn_pred)

    @property
    def frac_error_below_4pct(self) -> float:
        """Share of NN estimates within 4% of the minimal CF
        (paper: 31.75%)."""
        rel = np.abs(self.nn_pred - self.actual) / self.actual
        return float(np.mean(rel < 0.04))

    def render(self) -> str:
        return (
            f"Fig. 11: {self.n_modules} cnvW1A1 modules as test set\n"
            f"  linear regression median abs err: {self.linreg_median_err * 100:.1f}%\n"
            f"  NN (additional features) median abs err: {self.nn_median_err * 100:.1f}%\n"
            f"  NN estimates within 4%: {self.frac_error_below_4pct * 100:.1f}%"
        )


def run_fig11_cnv_estimation(ctx: ExperimentContext) -> Fig11Result:
    """Train on the RTL dataset, test on the 63 non-trivial cnvW1A1
    modules (the paper's deployment scenario)."""
    train = ctx.balanced()
    test = ctx.cnv_nontrivial()
    y = np.array([r.min_cf for r in test])
    lin = CFEstimator(kind="linreg", feature_set="linreg9", seed=ctx.seed).fit(train)
    nn = CFEstimator(kind="nn", feature_set="additional", seed=ctx.seed).fit(train)
    return Fig11Result(
        actual=y,
        linreg_pred=lin.predict_many(test),
        nn_pred=nn.predict_many(test),
        n_modules=len(test),
    )


@dataclass(frozen=True)
class Fig12Result:
    """RF importances when cnvW1A1 is the test set (the model is trained
    on the RTL dataset; importances are a property of the trained model)."""

    importances: dict[str, float]
    cnv_median_err: float

    def top_feature(self) -> tuple[str, float]:
        """The dominant feature (paper: a relative one, Carry/All-like)."""
        name = max(self.importances, key=self.importances.get)
        return name, self.importances[name]

    def render(self) -> str:
        ranked = sorted(self.importances.items(), key=lambda kv: -kv[1])
        rows = "\n".join(f"  {n}: {v:.2f}" for n, v in ranked if v > 0.01)
        return (
            "Fig. 12: RF feature importance (all features), cnvW1A1 test\n"
            + rows
            + f"\n  median abs err on cnvW1A1: {self.cnv_median_err * 100:.1f}%"
        )


def run_fig12_cnv_importance(ctx: ExperimentContext) -> Fig12Result:
    """RF trained on all features; importances + cnvW1A1 transfer error."""
    train = ctx.balanced()
    test = ctx.cnv_nontrivial()
    rf = CFEstimator(
        kind="rf", feature_set="all", seed=ctx.seed, rf_trees=ctx.rf_trees
    ).fit(train)
    y = np.array([r.min_cf for r in test])
    err = median_absolute_relative_error(y, rf.predict_many(test))
    return Fig12Result(
        importances=dict(
            zip(feature_names("all"), (float(v) for v in rf.feature_importances_))
        ),
        cnv_median_err=err,
    )


@dataclass(frozen=True)
class EstimatorImpactResult:
    """§VIII / Fig. 13: flow-level impact of the estimator."""

    first_run_rate: float
    estimator_runs: int
    sweep_runs: int
    estimator_flow: RWFlowResult
    const_flow: RWFlowResult
    const_cf: float
    estimator_stitch_seconds: float = 0.0
    const_stitch_seconds: float = 0.0
    #: Per-SA-seed stitch results (seed-averaged metrics below).
    estimator_stitches: tuple = ()
    const_stitches: tuple = ()

    @property
    def runs_ratio(self) -> float:
        """Constant-CF=0.9 sweep runs / estimator runs (paper: 1.8x)."""
        return self.sweep_runs / self.estimator_runs if self.estimator_runs else 0.0

    def _pairs(self):
        est = self.estimator_stitches or (self.estimator_flow.stitch,)
        const = self.const_stitches or (self.const_flow.stitch,)
        return list(zip(est, const))

    @property
    def convergence_speedup(self) -> float:
        """Time-to-equal-quality speed-up vs constant CF (paper: 1.37x).

        For each SA seed: iterations the constant-CF anneal needed to
        reach its own final cost, divided by the iterations the
        estimator-driven anneal needed to reach that same cost; averaged
        over seeds.  Compact footprints descend faster, so the ratio
        exceeds 1 whenever the estimator flow is better.
        """
        ratios = []
        for est, const in self._pairs():
            target = const.final_cost
            ci = const.iters_to_cost(target)
            ei = est.iters_to_cost(target)
            if ei is None:
                ratios.append(0.0)
            elif ci is None:
                continue
            else:
                ratios.append(ci / max(1, ei))
        return sum(ratios) / len(ratios) if ratios else 0.0

    @property
    def cost_reduction(self) -> float:
        """Relative final-cost drop vs constant CF, seed-averaged
        (paper: 40%)."""
        pairs = self._pairs()
        c = sum(p[1].final_cost for p in pairs) / len(pairs)
        e = sum(p[0].final_cost for p in pairs) / len(pairs)
        return 1.0 - e / c if c else 0.0

    def render(self) -> str:
        t = Table(["metric", "value", "paper"], title="§VIII: estimator impact")
        t.add_row(
            ["first-run success", f"{self.first_run_rate * 100:.1f}%", "52.7%"]
        )
        t.add_row(
            [
                "tool runs, const CF=0.9 / estimator",
                f"{self.runs_ratio:.2f}x ({self.sweep_runs}/{self.estimator_runs})",
                "1.8x",
            ]
        )
        t.add_row(
            [
                "SA convergence speed-up (to equal quality)",
                f"{self.convergence_speedup:.2f}x",
                "1.37x",
            ]
        )
        t.add_row(["SA final-cost reduction", f"{self.cost_reduction * 100:.0f}%", "40%"])
        t.add_row(
            [
                "unplaced (estimator vs const)",
                f"{self.estimator_flow.stitch.n_unplaced} vs "
                f"{self.const_flow.stitch.n_unplaced}",
                "-",
            ]
        )
        return t.render()


def run_estimator_impact(
    ctx: ExperimentContext,
    sa_params: SAParams | None = None,
    estimator_kind: str = "nn",
    n_sa_seeds: int = 3,
) -> EstimatorImpactResult:
    """Reproduce §VIII: drive the cnvW1A1 flow with the trained estimator.

    Pre-implementation sizes PBlocks against the xc7z020; the full design
    is stitched on the larger xc7z045, as in the paper.  The annealing
    metrics (convergence speed, final cost) are averaged over
    ``n_sa_seeds`` SA seeds because single runs are noisy.
    """
    train = ctx.balanced()
    estimator = CFEstimator(
        kind=estimator_kind,
        feature_set="additional",
        seed=ctx.seed,
        rf_trees=ctx.rf_trees,
    ).fit(train)
    design = ctx.design()
    sa = sa_params or SAParams(max_iters=40000, seed=ctx.seed)

    from dataclasses import replace as _replace

    def _timed_flow(policy, n_seeds=1):
        implemented = implement_design(design, ctx.z020, policy)
        footprints = {
            name: impl.outcome.result.footprint
            for name, impl in implemented.items()
            if impl.outcome.result.footprint is not None
        }
        t0 = time.perf_counter()
        stitches = tuple(
            stitch(design, footprints, ctx.z045, _replace(sa, seed=sa.seed + k))
            for k in range(n_seeds)
        )
        seconds = (time.perf_counter() - t0) / n_seeds
        runs = sum(m.outcome.n_runs for m in implemented.values())
        return (
            RWFlowResult(
                implemented=implemented, stitch=stitches[0], total_tool_runs=runs
            ),
            seconds,
            stitches,
        )

    policy = EstimatedCF(estimator=estimator)
    est_flow, est_seconds, est_stitches = _timed_flow(policy, n_sa_seeds)

    # Baseline 1: constant CF = 0.9 with upward sweep (run-count baseline).
    sweep_flow, _, _ = _timed_flow(SweepCF(start=0.9))
    # Baseline 2: the constant worst-case CF (quality baseline, paper 1.68).
    const_cf = max(r.min_cf for r in ctx.cnv_records())
    const_flow, const_seconds, const_stitches = _timed_flow(
        FixedCF(round(const_cf + 1e-9, 2)), n_sa_seeds
    )
    return EstimatorImpactResult(
        first_run_rate=policy.first_run_rate,
        estimator_runs=est_flow.total_tool_runs,
        sweep_runs=sweep_flow.total_tool_runs,
        estimator_flow=est_flow,
        const_flow=const_flow,
        const_cf=const_cf,
        estimator_stitch_seconds=est_seconds,
        const_stitch_seconds=const_seconds,
        estimator_stitches=est_stitches,
        const_stitches=const_stitches,
    )
