"""§VI-C resolution ablation: how the CF search step interacts with module
size.

The paper observes that sub-100-LUT modules gain nothing from steps finer
than 0.1 (the PBlock cannot change for <10% increments at a constant
aspect ratio), while ~2,500-LUT modules need 0.03 or finer; 0.02 is chosen
because 85% of the dataset is smaller than that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import ExperimentContext
from repro.pblock.cf_search import minimal_cf, recommended_step
from repro.utils.tables import Table

__all__ = ["ResolutionResult", "run_resolution_study"]

_STEPS = (0.1, 0.05, 0.02)
_SIZE_BINS = ((0, 100), (100, 1000), (1000, 10**9))


@dataclass(frozen=True)
class ResolutionResult:
    """Mean CF over-shoot of coarse steps relative to the 0.02 sweep,
    per module-size bin."""

    overshoot: dict[tuple[int, int], dict[float, float]]
    n_per_bin: dict[tuple[int, int], int]
    frac_below_2500_luts: float

    def render(self) -> str:
        t = Table(
            ["LUT range", "n", *[f"step {s}" for s in _STEPS]],
            float_fmt="{:.3f}",
            title="§VI-C: CF overshoot vs search step (relative to 0.02)",
        )
        for bin_, per_step in self.overshoot.items():
            label = f"{bin_[0]}-{bin_[1] if bin_[1] < 10**9 else 'inf'}"
            t.add_row([label, self.n_per_bin[bin_], *[per_step[s] for s in _STEPS]])
        return (
            t.render()
            + f"\nfraction of dataset under 2,500 LUTs: "
            f"{self.frac_below_2500_luts * 100:.0f}% (paper: 85%)"
        )


def run_resolution_study(
    ctx: ExperimentContext, n_samples: int = 150
) -> ResolutionResult:
    """Sweep a dataset subsample at several step sizes and measure how
    much CF (hence PBlock area) each coarse step gives away per size bin.
    """
    records, _ = ctx.dataset()
    subsample = records[:n_samples]

    overshoot: dict[tuple[int, int], dict[float, list[float]]] = {
        b: {s: [] for s in _STEPS} for b in _SIZE_BINS
    }
    n_per_bin = {b: 0 for b in _SIZE_BINS}
    for rec in subsample:
        n_luts = rec.stats.n_lut
        bin_ = next(b for b in _SIZE_BINS if b[0] <= n_luts < b[1])
        n_per_bin[bin_] += 1
        for step in _STEPS:
            found = minimal_cf(
                rec.stats, ctx.z020, step=step, report=rec.report
            )
            overshoot[bin_][step].append(found.cf - rec.min_cf)

    means = {
        b: {s: float(np.mean(v)) if v else 0.0 for s, v in per.items()}
        for b, per in overshoot.items()
    }
    luts = np.array([r.stats.n_lut for r in records])
    assert recommended_step(50) >= recommended_step(2500)  # §VI-C rule sanity
    return ResolutionResult(
        overshoot=means,
        n_per_bin=n_per_bin,
        frac_below_2500_luts=float(np.mean(luts < 2500)),
    )
