"""Table I and Fig. 3: per-block slices/timing vs PBlock tightness."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.context import ExperimentContext
from repro.cnv.design import cnv_module_stats
from repro.flow.monolithic import monolithic_flow
from repro.flow.policy import FixedCF
from repro.pblock.cf_search import minimal_cf
from repro.place.quick import quick_place
from repro.route.timing import longest_path
from repro.utils.tables import Table

__all__ = ["Table1Row", "Table1Result", "run_table1", "Fig3Result", "run_fig3_footprints"]

#: The two modules Table I examines.
TABLE1_MODULES = ("mvau_18", "weights_14")
#: The loose constant CF of Table I.
TABLE1_LOOSE_CF = 1.5


@dataclass(frozen=True)
class Table1Row:
    """One module's row of Table I."""

    module: str
    slices_cf15: int
    slices_min: int
    min_cf: float
    path_cf15_ns: float
    path_min_ns: float
    slices_amd: tuple[int, ...]


@dataclass(frozen=True)
class Table1Result:
    """All rows plus the flat-flow context."""

    rows: tuple[Table1Row, ...]
    amd_utilization: float

    def render(self) -> str:
        t = Table(
            [
                "module",
                "RW slices CF=1.5",
                "RW slices CF=min",
                "min CF",
                "path CF=1.5 (ns)",
                "path CF=min (ns)",
                "AMD EDA slices",
            ],
            title="Table I: synthesis results of the cnvW1A1",
        )
        for r in self.rows:
            t.add_row(
                [
                    r.module,
                    r.slices_cf15,
                    r.slices_min,
                    f"{r.min_cf:.2f}",
                    r.path_cf15_ns,
                    r.path_min_ns,
                    ",".join(str(s) for s in r.slices_amd),
                ]
            )
        return (
            t.render()
            + f"\nAMD-EDA flat flow utilization: {self.amd_utilization * 100:.2f}%"
        )


def run_table1(ctx: ExperimentContext) -> Table1Result:
    """Reproduce Table I: the same module implemented at CF 1.5, at its
    minimal feasible CF, and by the flat flow."""
    design = ctx.design()
    mono = monolithic_flow(design, ctx.z020)
    stats_by_name = cnv_module_stats()

    rows = []
    for name in TABLE1_MODULES:
        stats = stats_by_name[name]
        report = quick_place(stats)
        loose = FixedCF(TABLE1_LOOSE_CF).choose(stats, report, ctx.z020)
        tight = minimal_cf(stats, ctx.z020, search_down=True, report=report)
        rows.append(
            Table1Row(
                module=name,
                slices_cf15=loose.result.used_slices,
                slices_min=tight.result.used_slices,
                min_cf=tight.cf,
                path_cf15_ns=longest_path(stats, loose.result, loose.pblock).total_ns,
                path_min_ns=longest_path(stats, tight.result, tight.pblock).total_ns,
                slices_amd=tuple(mono.module_slices(design, name)),
            )
        )
    return Table1Result(rows=tuple(rows), amd_utilization=mono.utilization)


@dataclass(frozen=True)
class Fig3Result:
    """Footprint regularity of the Fig. 3 modules at loose vs minimal CF."""

    module: str
    rect_cf15: float
    rect_min: float
    bbox_cf15: int
    bbox_min: int

    def render(self) -> str:
        return (
            f"{self.module}: rectangularity {self.rect_cf15:.2f} (CF=1.5) -> "
            f"{self.rect_min:.2f} (CF=min); bbox {self.bbox_cf15} -> "
            f"{self.bbox_min} CLBs"
        )


def run_fig3_footprints(ctx: ExperimentContext) -> list[Fig3Result]:
    """Reproduce Fig. 3's contrast: loose PBlocks yield irregular
    footprints, minimal ones near-rectangles."""
    out = []
    stats_by_name = cnv_module_stats()
    for name in TABLE1_MODULES:
        stats = stats_by_name[name]
        report = quick_place(stats)
        loose = FixedCF(TABLE1_LOOSE_CF).choose(stats, report, ctx.z020)
        tight = minimal_cf(stats, ctx.z020, search_down=True, report=report)
        fp_l = loose.result.footprint.trimmed()
        fp_t = tight.result.footprint.trimmed()
        out.append(
            Fig3Result(
                module=name,
                rect_cf15=fp_l.rectangularity,
                rect_min=fp_t.rectangularity,
                bbox_cf15=fp_l.bbox_clbs,
                bbox_min=fp_t.bbox_clbs,
            )
        )
    return out
