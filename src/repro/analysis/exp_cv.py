"""K-fold cross-validation of the Table II conclusions.

The paper evaluates on a single 80/20 split; this extension re-runs the
DT/RF comparison across k folds to show the "relative features win"
conclusion is stable, and reports per-fold variance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import ExperimentContext
from repro.features.registry import extract_matrix
from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import mean_relative_error
from repro.ml.split import kfold_indices
from repro.ml.tree import DecisionTreeRegressor
from repro.utils.tables import Table

__all__ = ["CVResult", "run_cv_study"]

_SETS = ("classical", "additional")


@dataclass(frozen=True)
class CVResult:
    """Cross-validated relative errors (mean ± std per feature set)."""

    k: int
    dt: dict[str, tuple[float, float]]
    rf: dict[str, tuple[float, float]]

    def render(self) -> str:
        t = Table(
            ["model", *(f"{s} (mean±std %)" for s in _SETS)],
            title=f"{self.k}-fold cross-validation of Table II",
        )
        for label, errs in (("Decision Tree", self.dt), ("Random Forest", self.rf)):
            t.add_row(
                [label]
                + [f"{m * 100:.1f}±{s * 100:.1f}" for m, s in (errs[fs] for fs in _SETS)]
            )
        return t.render()

    def additional_wins(self, model: str = "rf") -> bool:
        """True if relative features beat classical beyond one std."""
        errs = self.rf if model == "rf" else self.dt
        (m_add, s_add), (m_cls, _) = errs["additional"], errs["classical"]
        return m_add + s_add < m_cls + 1e-12 or m_add < m_cls


def run_cv_study(
    ctx: ExperimentContext, k: int = 5, rf_trees: int | None = None
) -> CVResult:
    """Run the k-fold study on the balanced dataset."""
    balanced = ctx.balanced()
    folds = kfold_indices(len(balanced), k=k, seed=ctx.seed)
    rf_trees = rf_trees or max(20, ctx.rf_trees // 4)

    dt_errs = {fs: [] for fs in _SETS}
    rf_errs = {fs: [] for fs in _SETS}
    for fold_i, (tr, te) in enumerate(folds):
        for fs in _SETS:
            X, y = extract_matrix(balanced, fs)
            dt = DecisionTreeRegressor(
                max_depth=20, min_samples_leaf=2, seed=ctx.seed + fold_i
            ).fit(X[tr], y[tr])
            dt_errs[fs].append(mean_relative_error(y[te], dt.predict(X[te])))
            rf = RandomForestRegressor(
                n_estimators=rf_trees, max_depth=20, seed=ctx.seed + fold_i
            ).fit(X[tr], y[tr])
            rf_errs[fs].append(mean_relative_error(y[te], rf.predict(X[te])))

    def agg(errs: dict[str, list[float]]) -> dict[str, tuple[float, float]]:
        return {
            fs: (float(np.mean(v)), float(np.std(v))) for fs, v in errs.items()
        }

    return CVResult(k=k, dt=agg(dt_errs), rf=agg(rf_errs))
