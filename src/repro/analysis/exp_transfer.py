"""Cross-device transfer study (extension).

The minimal CF depends on the target device through PBlock quantization
(column availability, device height clamping).  The paper trains and
evaluates on one family member; this study asks whether an estimator
trained on xc7z020 labels transfers to the *smaller* xc7z010 — the
direction where the device actually constrains PBlocks (tall modules
clamp against the 100-row fabric).  Within the 7-series family the
column unit repeats, so the expected finding is near-perfect transfer
with small shifts confined to tall/carry-heavy modules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import ExperimentContext
from repro.estimator.cf_estimator import CFEstimator
from repro.features.registry import ModuleRecord, make_record
from repro.ml.metrics import mean_relative_error
from repro.pblock.cf_search import InfeasibleModuleError, minimal_cf
from repro.utils.tables import Table

__all__ = ["TransferResult", "run_transfer_study"]


@dataclass(frozen=True)
class TransferResult:
    """Transfer errors between device targets (z020 -> z010)."""

    in_device_error: float
    cross_device_error: float
    label_shift: float
    n_test: int

    def render(self) -> str:
        t = Table(["setting", "value"], float_fmt="{:.3f}",
                  title="cross-device transfer (train xc7z020 -> test xc7z010)")
        t.add_row(["RF error on xc7z020 labels", f"{self.in_device_error * 100:.1f}%"])
        t.add_row(["RF error on xc7z010 labels", f"{self.cross_device_error * 100:.1f}%"])
        t.add_row(["mean |CF(z010) - CF(z020)|", f"{self.label_shift:.3f}"])
        t.add_row(["test modules", self.n_test])
        return t.render()


def run_transfer_study(
    ctx: ExperimentContext, n_test: int = 120
) -> TransferResult:
    """Train on the xc7z020-labeled dataset; evaluate on both devices'
    labels for a held-out subsample (modules infeasible on the small
    device are skipped)."""
    balanced = ctx.balanced()
    rf = CFEstimator(
        kind="rf", feature_set="additional", seed=ctx.seed, rf_trees=ctx.rf_trees
    ).fit(balanced)

    records, _ = ctx.dataset()
    test = records[-n_test:]
    z20 = np.array([r.min_cf for r in test])
    preds = rf.predict_many(test)

    small_records: list[ModuleRecord] = []
    small_labels: list[float] = []
    kept_z20: list[float] = []
    kept_pred: list[float] = []
    for rec, label20, pred in zip(test, z20, preds):
        try:
            found = minimal_cf(rec.stats, ctx.z010, report=rec.report)
        except InfeasibleModuleError:
            continue
        small_records.append(make_record(rec.stats, rec.report, min_cf=found.cf))
        small_labels.append(found.cf)
        kept_z20.append(label20)
        kept_pred.append(pred)

    z010_arr = np.array(small_labels)
    z020_arr = np.array(kept_z20)
    pred_arr = np.array(kept_pred)
    return TransferResult(
        in_device_error=mean_relative_error(z020_arr, pred_arr),
        cross_device_error=mean_relative_error(z010_arr, pred_arr),
        label_shift=float(np.mean(np.abs(z010_arr - z020_arr))),
        n_test=len(z010_arr),
    )
