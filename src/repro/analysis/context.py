"""Shared, lazily computed experiment inputs."""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from repro.cnv.design import cnv_design, cnv_module_stats
from repro.dataset.balance import balance_dataset
from repro.dataset.generate import GenerationReport, generate_dataset
from repro.device.grid import DeviceGrid
from repro.device.parts import xc7z010, xc7z020, xc7z045
from repro.features.registry import ModuleRecord, make_record
from repro.flow.blockdesign import BlockDesign
from repro.pblock.cf_search import minimal_cf
from repro.place.quick import quick_place

__all__ = ["ExperimentContext", "default_context"]


@dataclass
class ExperimentContext:
    """Caches the expensive shared inputs of the experiment suite.

    Parameters
    ----------
    seed:
        Root seed of every derived computation.
    n_modules:
        RTL sweep size (paper: ~2,000; smaller values run faster with the
        same qualitative results).
    cap_per_bin:
        Balancing cap (paper: 75).
    rf_trees:
        Random-forest size for trained estimators (paper: 1,000; 200
        gives indistinguishable errors at 1/5 the cost — see the
        ``rf_size`` ablation bench).
    dataset_workers:
        Worker processes for the labeling sweep (0 = sequential;
        results are identical either way).
    dataset_cache_dir:
        Optional persistent :class:`~repro.dataset.cache.DatasetCache`
        directory; a second session warm-starts the sweep from disk.
    """

    seed: int = 0
    n_modules: int = 2000
    cap_per_bin: int = 75
    rf_trees: int = 200
    dataset_workers: int = 0
    dataset_cache_dir: str | None = None
    _cache: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------- devices

    @property
    def z010(self) -> DeviceGrid:
        """The smallest family member (transfer study)."""
        return self._memo("z010", xc7z010)

    @property
    def z020(self) -> DeviceGrid:
        """The xc7z020 (module pre-implementation and Fig. 4/5)."""
        return self._memo("z020", xc7z020)

    @property
    def z045(self) -> DeviceGrid:
        """The xc7z045 (§VIII stitching)."""
        return self._memo("z045", xc7z045)

    def _memo(self, key, fn):
        if key not in self._cache:
            self._cache[key] = fn()
        return self._cache[key]

    # ------------------------------------------------------------- dataset

    def dataset(self) -> tuple[list[ModuleRecord], GenerationReport]:
        """Raw labeled dataset (before balancing)."""
        return self._memo(
            "dataset",
            lambda: generate_dataset(
                self.n_modules,
                seed=self.seed,
                grid=self.z020,
                workers=self.dataset_workers or None,
                cache_dir=self.dataset_cache_dir,
            ),
        )

    def balanced(self) -> list[ModuleRecord]:
        """Balanced dataset (Fig. 8)."""
        return self._memo(
            "balanced",
            lambda: balance_dataset(
                self.dataset()[0], cap_per_bin=self.cap_per_bin, seed=self.seed
            ),
        )

    # ------------------------------------------------------------- cnvW1A1

    def design(self) -> BlockDesign:
        """The cnvW1A1 block design."""
        return self._memo("design", cnv_design)

    def cnv_records(self) -> list[ModuleRecord]:
        """Labeled records of the cnvW1A1 unique modules (minimal CF on
        the xc7z020, searched downward as in Fig. 4)."""

        def _build() -> list[ModuleRecord]:
            records = []
            for _name, stats in cnv_module_stats().items():
                report = quick_place(stats)
                found = minimal_cf(
                    stats, self.z020, search_down=True, report=report
                )
                records.append(
                    make_record(stats, report, min_cf=found.cf, family="cnv")
                )
            return records

        return self._memo("cnv_records", _build)

    def cnv_nontrivial(self) -> list[ModuleRecord]:
        """cnvW1A1 modules excluding one-or-two-tile ones (paper §VIII
        keeps 63 of the 74 for the estimator study)."""
        return [r for r in self.cnv_records() if not r.stats.is_trivial()]


@functools.lru_cache(maxsize=4)
def default_context(
    seed: int = 0, n_modules: int = 2000, rf_trees: int = 200
) -> ExperimentContext:
    """Process-wide shared context (used by benchmarks and examples)."""
    return ExperimentContext(seed=seed, n_modules=n_modules, rf_trees=rf_trees)
