"""Trace persistence and reporting.

One trace document is the JSON dict produced by
:meth:`repro.obs.tracer.Tracer.to_json_dict`::

    {
      "version": 1,
      "spans": [
        {"name": "stitch", "dur_s": 0.41,
         "attrs": {"kernel": "fast", "seed": 0},
         "counters": {"iterations": 20000},
         "children": [{"name": "stitch.anneal", ...}, ...]},
      ],
      "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}
    }

``save_trace`` writes that document as JSON, or — when the path ends in
``.jsonl`` — as JSON Lines: a ``{"version", "metrics"}`` header line
followed by one flat span record per line in depth-first order (``depth``
encodes the nesting), which streams well into log pipelines.
``load_trace`` reads either format back into the same document shape, and
``summarize_trace`` renders the per-stage breakdown table the CLI's
``--profile`` flag and ``repro trace summarize`` print.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.tracer import NullTracer, Span, Tracer
from repro.utils.tables import Table

__all__ = ["load_trace", "save_trace", "summarize_trace", "trace_document"]


def trace_document(trace: Tracer | NullTracer | dict) -> dict:
    """Normalize a tracer or an already-exported dict into the schema."""
    if isinstance(trace, dict):
        return trace
    if isinstance(trace, NullTracer):
        return {"version": 1, "spans": [], "metrics": {}}
    return trace.to_json_dict()


# ----------------------------------------------------------------- save/load


def _flatten(span_dict: dict, depth: int, out: list[dict]) -> None:
    rec = {"depth": depth}
    rec.update({k: v for k, v in span_dict.items() if k != "children"})
    out.append(rec)
    for child in span_dict.get("children", []):
        _flatten(child, depth + 1, out)


def save_trace(trace: Tracer | NullTracer | dict, path: str | Path) -> Path:
    """Write a trace as JSON, or JSONL when ``path`` ends in ``.jsonl``."""
    path = Path(path)
    doc = trace_document(trace)
    if path.suffix == ".jsonl":
        lines = [
            json.dumps(
                {"version": doc.get("version", 1), "metrics": doc.get("metrics", {})},
                sort_keys=True,
            )
        ]
        flat: list[dict] = []
        for root in doc.get("spans", []):
            _flatten(root, 0, flat)
        lines.extend(json.dumps(rec, sort_keys=True) for rec in flat)
        path.write_text("\n".join(lines) + "\n")
    else:
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def _unflatten(records: list[dict]) -> list[dict]:
    """Rebuild the span forest from depth-annotated DFS records."""
    roots: list[dict] = []
    stack: list[tuple[int, dict]] = []
    for rec in records:
        depth = int(rec.get("depth", 0))
        span = {k: v for k, v in rec.items() if k != "depth"}
        while stack and stack[-1][0] >= depth:
            stack.pop()
        if stack:
            stack[-1][1].setdefault("children", []).append(span)
        else:
            roots.append(span)
        stack.append((depth, span))
    return roots


def load_trace(path: str | Path) -> dict:
    """Read a trace written by :func:`save_trace` (JSON or JSONL)."""
    path = Path(path)
    if path.suffix == ".jsonl":
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        if not lines:
            return {"version": 1, "spans": [], "metrics": {}}
        header, spans = lines[0], lines[1:]
        return {
            "version": header.get("version", 1),
            "spans": _unflatten(spans),
            "metrics": header.get("metrics", {}),
        }
    return json.loads(path.read_text())


# ----------------------------------------------------------------- summarize


def _fmt_counters(counters: dict) -> str:
    return " ".join(f"{k}={counters[k]}" for k in sorted(counters))


def summarize_trace(trace: Tracer | NullTracer | dict) -> str:
    """Render the per-stage breakdown table of one trace.

    One row per span in depth-first order; nesting shows as indentation,
    ``% of root`` is relative to the span's root so phase shares read
    directly (the paper-style per-stage breakdown).
    """
    doc = trace_document(trace)
    spans = [Span.from_json_dict(d) for d in doc.get("spans", [])]
    table = Table(
        ["span", "dur (s)", "% of root", "counters / attrs"],
        float_fmt="{:.4f}",
        title="Trace breakdown",
    )
    for root in spans:
        total = root.dur_s or 0.0
        for depth, span in root.walk():
            share = 100.0 * span.dur_s / total if total > 0 else 0.0
            notes = _fmt_counters(span.counters)
            if span.attrs:
                attrs = " ".join(
                    f"{k}={span.attrs[k]}" for k in sorted(span.attrs)
                )
                notes = f"{notes} [{attrs}]" if notes else f"[{attrs}]"
            table.add_row(
                ["  " * depth + span.name, span.dur_s, f"{share:.1f}", notes]
            )
    lines = [table.render()]

    metrics = doc.get("metrics") or {}
    rows = []
    for name in sorted(metrics.get("counters", {})):
        rows.append([name, "counter", str(metrics["counters"][name])])
    for name in sorted(metrics.get("gauges", {})):
        rows.append([name, "gauge", str(metrics["gauges"][name])])
    for name in sorted(metrics.get("histograms", {})):
        h = metrics["histograms"][name]
        rows.append(
            [
                name,
                "histogram",
                f"n={h.get('count', 0)} mean={h.get('mean', 0.0):.4f} "
                f"min={h.get('min', 0.0):.4f} max={h.get('max', 0.0):.4f}",
            ]
        )
    if rows:
        mtable = Table(["metric", "kind", "value"], title="Metrics")
        mtable.add_rows(rows)
        lines.append("")
        lines.append(mtable.render())
    return "\n".join(lines)
