"""Observability: tracing spans, metrics and trace export.

* :mod:`repro.obs.tracer` — :class:`Tracer` with nestable ``span()``
  context managers (monotonic timings, per-span counters/attributes),
  the ambient-tracer plumbing and the no-op :data:`NULL_TRACER`;
* :mod:`repro.obs.metrics` — the counter/gauge/histogram registry;
* :mod:`repro.obs.export` — JSON/JSONL persistence and the rendered
  per-stage breakdown table (``repro trace summarize``).

The flow's hot paths (``stitch``, ``implement_design``,
``generate_dataset``, ``DSEExplorer.evaluate``, ``run_rw_flow``) record
spans into the ambient tracer when one is installed (``use_tracer`` or
the CLI's ``--trace-out`` / ``--profile`` flags) and derive their legacy
stats objects (``StitchStats``, ``FlowStats``, ``GenerationReport``)
from the same spans, so there is exactly one timing source.
"""

from repro.obs.export import load_trace, save_trace, summarize_trace, trace_document
from repro.obs.metrics import Counter, Gauge, Histogram, Metrics
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "NullTracer",
    "Span",
    "Tracer",
    "current_tracer",
    "load_trace",
    "save_trace",
    "set_tracer",
    "summarize_trace",
    "trace_document",
    "use_tracer",
]
