"""Metrics registry: counters, gauges and histograms.

Spans (:mod:`repro.obs.tracer`) answer "where did the time go"; the
:class:`Metrics` registry answers "how much of X happened" for
quantities that are not tied to one span — cache hit totals across a
whole run, worker counts, per-module wall-time distributions.  The
registry is deliberately tiny: names map to one of three instrument
kinds, and everything exports to plain JSON alongside the span tree.
"""

from __future__ import annotations

import math

__all__ = ["Counter", "Gauge", "Histogram", "Metrics"]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0: counters only go up)."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (n={n})")
        self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observations (count/sum/min/max).

    Keeps O(1) state — enough for the mean and range the breakdown
    tables report — rather than raw samples.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_json_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }


class Metrics:
    """Name-keyed instrument registry.

    ``counter`` / ``gauge`` / ``histogram`` create on first use and
    return the existing instrument afterwards; asking for one name with
    two different kinds is an error.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type) -> Counter | Gauge | Histogram:
        inst = self._instruments.get(name)
        if inst is None:
            inst = kind(name)
            self._instruments[name] = inst
        elif type(inst) is not kind:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {kind.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)  # type: ignore[return-value]

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    # ------------------------------------------------------------- export

    def to_json_dict(self) -> dict:
        """``{"counters": {...}, "gauges": {...}, "histograms": {...}}``."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                out["counters"][name] = inst.value
            elif isinstance(inst, Gauge):
                out["gauges"][name] = inst.value
            else:
                out["histograms"][name] = inst.to_json_dict()
        return out
