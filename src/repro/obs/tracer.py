"""Nestable span tracing with monotonic timings.

The flow's headline claims are flow-*behavior* claims — convergence
speed, tool-run counts, per-stage wall time — so every stage of the
pipeline records a :class:`Span` tree: ``stitch`` opens children
``stitch.setup`` / ``stitch.initial`` / ``stitch.anneal`` /
``stitch.fill``, pre-implementation opens one ``preimpl.module`` span per
cache miss, and so on (the naming convention is documented in
``docs/api.md``).  All timings use :func:`time.perf_counter`, never the
wall clock, so durations are monotonic and immune to clock adjustment.

Design rules:

* **Near-zero overhead when disabled.**  The ambient tracer defaults to
  :data:`NULL_TRACER`, whose ``span()`` returns a shared do-nothing
  context manager — no allocation, no clock read.  Code paths that
  *derive their public stats from the trace* (``stitch``,
  ``implement_design``, ``generate_dataset``) build a private throwaway
  :class:`Tracer` instead; that costs exactly the handful of
  ``perf_counter`` snapshots the bespoke timing code it replaced already
  paid.
* **Process-safe accumulation.**  ``perf_counter`` origins differ across
  processes, so spans store durations, not absolute timestamps.  A pool
  worker records into its own local :class:`Tracer`, ships the span tree
  back as a plain dict (:meth:`Span.to_json_dict`), and the parent
  grafts it into the enclosing span with :meth:`Tracer.graft` — each
  worker span therefore appears exactly once in the parent trace,
  regardless of worker count.
* **Determinism untouched.**  Spans carry counters and attributes that
  are deterministic for a fixed seed; only ``dur_s`` varies run to run.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.metrics import Metrics

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "current_tracer",
    "set_tracer",
    "use_tracer",
]


class Span:
    """One timed stage: duration, attributes, counters and child spans.

    Used as a context manager (via :meth:`Tracer.span`); attributes are
    free-form metadata, counters accumulate integers (move mixes, cache
    hits, tool runs).
    """

    __slots__ = ("name", "dur_s", "attrs", "counters", "children", "_t0", "_tracer")

    def __init__(
        self,
        name: str,
        tracer: "Tracer | None" = None,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.dur_s = 0.0
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.counters: dict[str, int] = {}
        self.children: list[Span] = []
        self._t0 = 0.0
        self._tracer = tracer

    # ------------------------------------------------------------- recording

    def incr(self, counter: str, n: int = 1) -> None:
        """Add ``n`` to a named counter."""
        self.counters[counter] = self.counters.get(counter, 0) + n

    def set_attr(self, key: str, value: Any) -> None:
        """Set one attribute."""
        self.attrs[key] = value

    def elapsed(self) -> float:
        """Seconds since the span opened (monotonic); ``dur_s`` once closed."""
        if self._t0:
            return time.perf_counter() - self._t0
        return self.dur_s

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._push(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.dur_s = time.perf_counter() - self._t0
        self._t0 = 0.0
        if self._tracer is not None:
            self._tracer._pop(self)
        return False

    # ------------------------------------------------------------- queries

    def walk(self) -> Iterator[tuple[int, "Span"]]:
        """Depth-first ``(depth, span)`` over this span and its subtree."""
        stack: list[tuple[int, Span]] = [(0, self)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            for child in reversed(span.children):
                stack.append((depth + 1, child))

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        for _depth, span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        """Every span named ``name`` in this subtree (depth-first order)."""
        return [s for _d, s in self.walk() if s.name == name]

    # ------------------------------------------------------------- export

    def to_json_dict(self) -> dict:
        """Plain-JSON representation (the trace schema's span object)."""
        out: dict[str, Any] = {"name": self.name, "dur_s": self.dur_s}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [c.to_json_dict() for c in self.children]
        return out

    @classmethod
    def from_json_dict(cls, data: dict) -> "Span":
        """Rebuild a span tree from :meth:`to_json_dict` output."""
        span = cls(str(data["name"]))
        span.dur_s = float(data.get("dur_s", 0.0))
        span.attrs = dict(data.get("attrs", {}))
        span.counters = dict(data.get("counters", {}))
        span.children = [cls.from_json_dict(c) for c in data.get("children", [])]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, dur_s={self.dur_s:.6f}, "
            f"children={len(self.children)})"
        )


class _NullSpan:
    """The do-nothing span: every operation is a constant-time no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def incr(self, counter: str, n: int = 1) -> None:
        pass

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def elapsed(self) -> float:
        return 0.0


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: hands out one shared no-op span, keeps nothing."""

    enabled = False
    metrics = Metrics()

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def graft(self, data: dict | None) -> None:
        pass


#: The process-wide default tracer (disabled).
NULL_TRACER = NullTracer()


class Tracer:
    """Collects a forest of spans plus a :class:`~repro.obs.metrics.Metrics`
    registry.

    Spans open with :meth:`span` nest under whatever span is currently
    open (a simple stack), so instrumented library functions compose: a
    ``stitch`` call made inside a ``flow`` span appears as its child.
    """

    enabled = True

    def __init__(self, metrics: Metrics | None = None) -> None:
        self.roots: list[Span] = []
        self.metrics = metrics if metrics is not None else Metrics()
        self._stack: list[Span] = []

    # ------------------------------------------------------------- recording

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span; nests under the currently open span on ``__enter__``."""
        return Span(name, self, attrs or None)

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def graft(self, data: dict | None) -> None:
        """Attach a serialized span tree (from a pool worker) to the
        currently open span, or as a new root when no span is open.

        The worker measured durations against its own monotonic clock;
        only durations are kept, so the graft is well-defined across
        processes.  ``None`` (a worker that ran without tracing) is
        ignored.
        """
        if data is None:
            return
        span = Span.from_json_dict(data)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    # ------------------------------------------------------------- queries

    def walk(self) -> Iterator[tuple[int, Span]]:
        """Depth-first ``(depth, span)`` over every root."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> Span | None:
        """First span named ``name`` across all roots."""
        for root in self.roots:
            hit = root.find(name)
            if hit is not None:
                return hit
        return None

    def find_all(self, name: str) -> list[Span]:
        """Every span named ``name`` across all roots."""
        return [s for root in self.roots for s in root.find_all(name)]

    # ------------------------------------------------------------- export

    def to_json_dict(self) -> dict:
        """The trace schema: ``{"version", "spans", "metrics"}``."""
        return {
            "version": 1,
            "spans": [root.to_json_dict() for root in self.roots],
            "metrics": self.metrics.to_json_dict(),
        }


# --------------------------------------------------------------- ambient

_current: Tracer | NullTracer = NULL_TRACER


def current_tracer() -> Tracer | NullTracer:
    """The ambient tracer instrumented functions fall back to.

    Defaults to :data:`NULL_TRACER`; per process (pool workers start
    disabled and record into explicit local tracers instead).
    """
    return _current


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` as the ambient tracer; returns the previous one."""
    global _current
    previous = _current
    _current = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer | NullTracer) -> Iterator[Tracer | NullTracer]:
    """Scope the ambient tracer to a ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
