"""Estimator-driven CF policy with the paper's refinement loop (§VIII).

The flow tries the predicted CF first (52.7% of cnvW1A1 modules succeed on
the first run in the paper).  Under-estimates climb in coarse 0.1 steps
until feasible, then the last interval is re-searched at the fine 0.02
resolution.  The ``overhead`` knob biases predictions upward to trade
PBlock density for fewer tool runs, exactly as §VIII discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.device.grid import DeviceGrid
from repro.estimator.cf_estimator import CFEstimator
from repro.features.registry import make_record
from repro.flow.policy import CFOutcome, CFPolicy, FlowInfeasibleError
from repro.netlist.stats import NetlistStats
from repro.place.quick import ShapeReport

__all__ = ["EstimatedCF"]

_COARSE = 0.1
_FINE = 0.02
_MAX_CF = 3.0
#: Predictions are snapped to the sweep grid and never below this floor.
_MIN_CF = 0.3


@dataclass
class EstimatedCF(CFPolicy):
    """CF policy backed by a trained :class:`CFEstimator`.

    Attributes
    ----------
    estimator:
        The trained model.
    overhead:
        Additive CF margin applied to every prediction (0 = densest
        PBlocks, more runs; >0 = fewer runs, looser PBlocks).
    first_run_hits:
        Modules whose predicted CF was feasible immediately (the paper's
        52.7% statistic); populated as the policy is used.
    """

    estimator: CFEstimator
    overhead: float = 0.0
    first_run_hits: int = field(default=0, init=False)
    modules_seen: int = field(default=0, init=False)

    @property
    def first_run_rate(self) -> float:
        """Fraction of modules implemented on the first tool run."""
        return self.first_run_hits / self.modules_seen if self.modules_seen else 0.0

    def fingerprint(self) -> str:
        """Cache identity: model kind, features, overhead and weights.

        Hashes the serialized model state (via
        :func:`repro.ml.persist.model_to_dict`), so two estimators with
        the same architecture but different trained weights never share
        cache entries.  The mutable first-run counters are deliberately
        excluded — they do not affect predictions.
        """
        from repro.flow.cache import stable_json_digest
        from repro.ml.persist import model_to_dict

        if getattr(self.estimator, "_fitted", False):
            weights = stable_json_digest(model_to_dict(self.estimator.model))
        else:
            weights = "unfitted"
        return (
            f"EstimatedCF(kind={self.estimator.kind},"
            f"features={self.estimator.feature_set},"
            f"overhead={self.overhead!r},weights={weights})"
        )

    def choose(
        self, stats: NetlistStats, report: ShapeReport, grid: DeviceGrid
    ) -> CFOutcome:
        record = make_record(stats, report)
        predicted = float(self.estimator.predict(record)) + self.overhead
        cf0 = max(_MIN_CF, round(round(predicted / _FINE) * _FINE, 10))

        self.modules_seen += 1
        n_runs = 1
        attempted = [cf0]
        pb, res = self._attempt(stats, report, cf0, grid)
        if pb is not None and res.feasible:
            self.first_run_hits += 1
            return CFOutcome(
                cf=cf0, n_runs=n_runs, pblock=pb, result=res, predicted_cf=cf0
            )

        # Coarse climb: +0.1 until feasible.
        prev = cf0
        cf = round(cf0 + _COARSE, 10)
        while cf <= _MAX_CF + 1e-9:
            n_runs += 1
            attempted.append(cf)
            pb, res = self._attempt(stats, report, cf, grid)
            if pb is not None and res.feasible:
                break
            prev = cf
            cf = round(cf + _COARSE, 10)
        else:
            raise FlowInfeasibleError(
                f"{stats.name}: no feasible CF up to {_MAX_CF} "
                f"(predicted {cf0:.2f})",
                attempted_cfs=tuple(attempted),
                n_runs=n_runs,
            )

        # Fine search of the last interval (prev, cf] at 0.02 resolution.
        fine = round(prev + _FINE, 10)
        while fine < cf - 1e-9:
            n_runs += 1
            pb_f, res_f = self._attempt(stats, report, fine, grid)
            if pb_f is not None and res_f.feasible:
                cf, pb, res = fine, pb_f, res_f
                break
            fine = round(fine + _FINE, 10)

        return CFOutcome(
            cf=cf, n_runs=n_runs, pblock=pb, result=res, predicted_cf=cf0
        )
