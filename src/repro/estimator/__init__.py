"""The learned PBlock correction-factor estimator (paper §VI-§VIII).

:class:`~repro.estimator.cf_estimator.CFEstimator` wraps one of the four
model types over one feature set; :class:`~repro.estimator.strategy.EstimatedCF`
plugs it into the flow with the paper's refinement loop: try the predicted
CF, on failure climb in 0.1 steps, then re-search the last interval at
0.02 (§VIII).  An optional overhead term trades tool runs for PBlock
density, as the paper discusses.
"""

from repro.estimator.cf_estimator import CFEstimator, train_estimator
from repro.estimator.strategy import EstimatedCF

__all__ = ["CFEstimator", "EstimatedCF", "train_estimator"]
