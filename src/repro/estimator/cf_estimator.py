"""Model wrapper: (records, feature set, model kind) -> CF predictions."""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.features.registry import FeatureExtractor, ModuleRecord
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import LinearRegression
from repro.ml.mlp import MLPRegressor
from repro.ml.tree import DecisionTreeRegressor

__all__ = ["CFEstimator", "train_estimator", "MODEL_KINDS"]


class _Regressor(Protocol):
    def fit(self, X: np.ndarray, y: np.ndarray) -> "_Regressor": ...

    def predict(self, X: np.ndarray) -> np.ndarray: ...


MODEL_KINDS = ("linreg", "dt", "rf", "nn", "gbrt")


def _make_model(kind: str, seed: int, rf_trees: int) -> _Regressor:
    if kind == "linreg":
        return LinearRegression(ridge=1e-6)
    if kind == "dt":
        return DecisionTreeRegressor(max_depth=20, min_samples_leaf=2, seed=seed)
    if kind == "rf":
        return RandomForestRegressor(
            n_estimators=rf_trees, max_depth=20, min_samples_leaf=1, seed=seed
        )
    if kind == "nn":
        return MLPRegressor(hidden=25, epochs=400, batch_size=32, seed=seed)
    if kind == "gbrt":
        return GradientBoostingRegressor(
            n_estimators=200, learning_rate=0.05, max_depth=4, seed=seed
        )
    raise KeyError(f"unknown model kind {kind!r}; known: {MODEL_KINDS}")


class CFEstimator:
    """A trained CF predictor.

    Parameters
    ----------
    kind:
        ``"linreg"`` / ``"dt"`` / ``"rf"`` / ``"nn"`` (paper §VI-B).
    feature_set:
        Feature set the model consumes (paper's best: ``"additional"``).
    seed:
        Training seed.
    rf_trees:
        Forest size when ``kind == "rf"`` (paper: 1,000).
    """

    def __init__(
        self,
        kind: str = "rf",
        feature_set: str = "additional",
        seed: int = 0,
        rf_trees: int = 200,
    ) -> None:
        self.kind = kind
        self.feature_set = feature_set
        self.extractor = FeatureExtractor(feature_set)
        self.model = _make_model(kind, seed, rf_trees)
        self._fitted = False

    def fit(self, records: Sequence[ModuleRecord]) -> "CFEstimator":
        """Train on labeled records (``min_cf`` must be set)."""
        if not records:
            raise ValueError("no training records")
        X = self.extractor.matrix(list(records))
        y = np.array([r.min_cf for r in records], dtype=np.float64)
        if np.isnan(y).any():
            raise ValueError("training records must all carry min_cf labels")
        self.model.fit(X, y)
        self._fitted = True
        return self

    def predict(self, record: ModuleRecord) -> float:
        """Predicted minimal CF of one module."""
        return float(self.predict_many([record])[0])

    def predict_many(self, records: Sequence[ModuleRecord]) -> np.ndarray:
        """Predicted minimal CFs."""
        if not self._fitted:
            raise RuntimeError("predict before fit")
        return self.model.predict(self.extractor.matrix(list(records)))

    @property
    def feature_importances_(self) -> np.ndarray | None:
        """Impurity importances for tree-based kinds (Figs. 9/12)."""
        return getattr(self.model, "feature_importances_", None)

    # ------------------------------------------------------------ persistence

    def save(self, path) -> None:
        """Persist the trained estimator to a JSON file."""
        from repro.ml.persist import model_to_dict
        from repro.utils.serialization import dump_json

        if not self._fitted:
            raise RuntimeError("save before fit")
        dump_json(
            {
                "kind": self.kind,
                "feature_set": self.feature_set,
                "model": model_to_dict(self.model),
            },
            path,
        )

    @staticmethod
    def load(path) -> "CFEstimator":
        """Load an estimator saved with :meth:`save`."""
        from repro.ml.persist import model_from_dict
        from repro.utils.serialization import load_json

        data = load_json(path)
        est = CFEstimator.__new__(CFEstimator)
        est.kind = data["kind"]
        est.feature_set = data["feature_set"]
        est.extractor = FeatureExtractor(est.feature_set)
        est.model = model_from_dict(data["model"])
        est._fitted = True
        return est


def train_estimator(
    records: Sequence[ModuleRecord],
    kind: str = "rf",
    feature_set: str = "additional",
    seed: int = 0,
    rf_trees: int = 200,
) -> CFEstimator:
    """One-call training helper."""
    return CFEstimator(
        kind=kind, feature_set=feature_set, seed=seed, rf_trees=rf_trees
    ).fit(records)
