"""Dataset balancing (paper §VII, Fig. 8).

The raw minimal-CF distribution is uneven (some generator sweeps emit many
more instances of a region of the design space than others).  To keep the
training process from over-focusing, the paper caps each CF value at 75
samples after shuffling, shrinking the set from ~2,000 to ~1,500.

Binning respects each record's own sweep resolution: a dataset generated
at a non-default (or adaptive, §VI-C) resolution carries the actual step
in :attr:`~repro.features.registry.ModuleRecord.sweep_step`, and the
default ``step=None`` quantizes every label on the grid it was swept on
instead of the hardcoded 0.02.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Sequence

from repro.features.registry import ModuleRecord
from repro.utils.rng import stream
from repro.utils.validation import check_positive

__all__ = ["balance_dataset", "cf_histogram"]


def _cf_bin(cf: float, step: float = 0.02) -> int:
    """Quantize a CF to its sweep-grid bin index."""
    return int(round(cf / step))


def _record_bin(rec: ModuleRecord, step: float | None) -> tuple[float, int]:
    """``(step, bin)`` of one record; ``step=None`` uses the record's own."""
    s = step if step is not None else rec.sweep_step
    return s, _cf_bin(rec.min_cf, s)


def balance_dataset(
    records: Sequence[ModuleRecord],
    cap_per_bin: int = 75,
    seed: int = 0,
    step: float | None = None,
) -> list[ModuleRecord]:
    """Cap each CF bin at ``cap_per_bin`` samples after shuffling.

    Order of the result is shuffled but deterministic in ``seed``.
    ``step=None`` (the default) bins each record on its own
    ``sweep_step``; pass an explicit step to force a uniform grid.
    """
    check_positive(cap_per_bin, "cap_per_bin")
    rng = stream(seed, "balance", cap_per_bin)
    order = list(records)
    rng.shuffle(order)
    kept: list[ModuleRecord] = []
    counts: dict[tuple[float, int], int] = defaultdict(int)
    for rec in order:
        key = _record_bin(rec, step)
        if counts[key] < cap_per_bin:
            counts[key] += 1
            kept.append(rec)
    return kept


def cf_histogram(
    records: Sequence[ModuleRecord], step: float | None = None
) -> dict[float, int]:
    """CF-value histogram (Fig. 4 / Fig. 8 series), keyed by CF.

    ``step=None`` bins each record on its own ``sweep_step`` (records
    swept at different resolutions land on their own grids), so labels
    are never mis-binned by the hardcoded paper default.
    """
    counter = Counter(_record_bin(r, step) for r in records)
    out: dict[float, int] = {}
    for (s, b), n in counter.items():
        cf = round(b * s, 10)
        out[cf] = out.get(cf, 0) + n
    return dict(sorted(out.items()))
