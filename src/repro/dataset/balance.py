"""Dataset balancing (paper §VII, Fig. 8).

The raw minimal-CF distribution is uneven (some generator sweeps emit many
more instances of a region of the design space than others).  To keep the
training process from over-focusing, the paper caps each CF value at 75
samples after shuffling, shrinking the set from ~2,000 to ~1,500.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Sequence

from repro.features.registry import ModuleRecord
from repro.utils.rng import stream
from repro.utils.validation import check_positive

__all__ = ["balance_dataset", "cf_histogram"]


def _cf_bin(cf: float, step: float = 0.02) -> int:
    """Quantize a CF to its sweep-grid bin index."""
    return int(round(cf / step))


def balance_dataset(
    records: Sequence[ModuleRecord],
    cap_per_bin: int = 75,
    seed: int = 0,
    step: float = 0.02,
) -> list[ModuleRecord]:
    """Cap each CF bin at ``cap_per_bin`` samples after shuffling.

    Order of the result is shuffled but deterministic in ``seed``.
    """
    check_positive(cap_per_bin, "cap_per_bin")
    rng = stream(seed, "balance", cap_per_bin)
    order = list(records)
    rng.shuffle(order)
    kept: list[ModuleRecord] = []
    counts: dict[int, int] = defaultdict(int)
    for rec in order:
        b = _cf_bin(rec.min_cf, step)
        if counts[b] < cap_per_bin:
            counts[b] += 1
            kept.append(rec)
    return kept


def cf_histogram(
    records: Sequence[ModuleRecord], step: float = 0.02
) -> dict[float, int]:
    """CF-value histogram (Fig. 4 / Fig. 8 series), keyed by CF."""
    counter = Counter(_cf_bin(r.min_cf, step) for r in records)
    return {round(b * step, 10): n for b, n in sorted(counter.items())}
