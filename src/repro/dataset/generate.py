"""Dataset generation: RTL sweep -> synthesized modules -> minimal-CF labels.

Labeling one module — synthesize, opt, quick-place, multi-run minimal-CF
search — is a pure function of the module's content and the sweep
parameters, so the ~2,000-module sweep fans out over a process pool in
deterministic chunks: results are assembled in sweep order and are
bitwise identical for any worker count (the same discipline as
:func:`~repro.flow.preimpl.implement_design`).  A
:class:`~repro.dataset.cache.DatasetCache` in front makes one generation
durable across runs and sessions; a warm hit does zero synthesis and
zero CF-search tool runs.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.dataset.cache import DatasetCache, dataset_key
from repro.device.grid import DeviceGrid
from repro.device.parts import xc7z020
from repro.features.registry import ModuleRecord, make_record
from repro.netlist.stats import compute_stats
from repro.obs.tracer import NullTracer, Tracer, current_tracer
from repro.pblock.cf_search import (
    InfeasibleModuleError,
    minimal_cf,
    recommended_step,
)
from repro.place.packer import _noise_hi, placer_noise_amplitude
from repro.place.quick import quick_place
from repro.rtlgen.base import RTLModule
from repro.rtlgen.sweep import generate_sweep
from repro.synth.mapper import opt_design, synthesize

__all__ = ["GenerationReport", "generate_dataset"]


@dataclass(frozen=True)
class GenerationReport:
    """Bookkeeping of one dataset generation run.

    Attributes
    ----------
    n_requested:
        Modules drawn from the generators.
    n_labeled:
        Modules that received a minimal-CF label.
    n_trivial:
        Modules skipped as one-or-two-tile trivial (the paper excludes
        them from the estimator study, §VIII).
    n_infeasible:
        Modules with no feasible CF up to the sweep limit (counted, not
        silently dropped).
    n_runs:
        Total place-and-route attempts of the sweep (the paper's §VIII
        "tool runs" proxy), including the attempts of infeasible
        modules.  An adaptive-resolution sweep reports its run savings
        here.
    n_workers:
        Worker processes the labeling fanned over (1 = sequential).
    wall_s:
        Wall-clock time of the generation (or of the cache lookup when
        ``cache_hit``).
    cache_hit:
        True when the records were served from a
        :class:`~repro.dataset.cache.DatasetCache` instead of being
        regenerated.
    """

    n_requested: int
    n_labeled: int
    n_trivial: int
    n_infeasible: int
    infeasible_names: tuple[str, ...] = field(default=())
    n_runs: int = 0
    n_workers: int = 1
    wall_s: float = 0.0
    cache_hit: bool = False

    def to_json_dict(self) -> dict:
        """Plain-JSON representation (CLI ``--json`` and CI artifacts)."""
        return {
            "n_requested": self.n_requested,
            "n_labeled": self.n_labeled,
            "n_trivial": self.n_trivial,
            "n_infeasible": self.n_infeasible,
            "infeasible_names": list(self.infeasible_names),
            "n_runs": self.n_runs,
            "n_workers": self.n_workers,
            "wall_s": self.wall_s,
            "cache_hit": self.cache_hit,
        }


#: Outcome tag of one labeled module inside a worker chunk.
_OK, _TRIVIAL, _INFEASIBLE = "ok", "trivial", "infeasible"


def _label_module(
    module: RTLModule,
    grid: DeviceGrid,
    start: float,
    step: float,
    max_cf: float,
    skip_trivial: bool,
    adaptive_step: bool,
) -> tuple[str, ModuleRecord | str, int]:
    """Label one module: ``(tag, record-or-name, n_runs)``."""
    stats = compute_stats(opt_design(synthesize(module)))
    if skip_trivial and stats.is_trivial():
        return (_TRIVIAL, stats.name, 0)
    report = quick_place(stats)
    used_step = recommended_step(stats.n_lut) if adaptive_step else step
    try:
        found = minimal_cf(
            stats, grid, start=start, step=used_step, max_cf=max_cf, report=report
        )
    except InfeasibleModuleError as exc:
        return (_INFEASIBLE, stats.name, exc.n_runs)
    record = make_record(
        stats,
        report,
        min_cf=found.cf,
        family=module.family,
        sweep_step=used_step,
    )
    return (_OK, record, found.n_runs)


def _label_chunk(
    args: tuple[
        list[RTLModule], DeviceGrid, float, float, float, bool, bool, float, bool
    ],
) -> tuple[list[tuple[str, ModuleRecord | str, int]], list[dict] | None]:
    """Worker entry point (module-level so it pickles).

    The parent's placer-noise amplitude is re-applied inside the worker:
    the override stack is process-local, and a noise-ablation sweep must
    label identically whether it runs sequentially or fanned out.

    When ``want_trace`` is set, one ``dataset.module`` span is recorded
    per module into a worker-local tracer and the span dicts ride back
    with the outcomes; the parent grafts each exactly once, so the
    merged trace is identical for any worker count (the sequential path
    goes through this same entry point).
    """
    (
        modules, grid, start, step, max_cf, skip_trivial, adaptive, noise,
        want_trace,
    ) = args
    tr = Tracer() if want_trace else None
    outcomes = []
    with placer_noise_amplitude(noise):
        for m in modules:
            span = tr.span("dataset.module", module=m.name) if tr else None
            if span is None:
                outcomes.append(
                    _label_module(
                        m, grid, start, step, max_cf, skip_trivial, adaptive
                    )
                )
                continue
            with span as sp:
                out = _label_module(
                    m, grid, start, step, max_cf, skip_trivial, adaptive
                )
                sp.set_attr("outcome", out[0])
                sp.incr("n_runs", out[2])
            outcomes.append(out)
    traces = [root.to_json_dict() for root in tr.roots] if tr else None
    return outcomes, traces


def _chunked(items: list, n_chunks: int) -> list[list]:
    """Split into at most ``n_chunks`` contiguous, order-preserving runs."""
    n_chunks = max(1, min(n_chunks, len(items)))
    size, extra = divmod(len(items), n_chunks)
    chunks, at = [], 0
    for i in range(n_chunks):
        end = at + size + (1 if i < extra else 0)
        chunks.append(items[at:end])
        at = end
    return chunks


def generate_dataset(
    n_modules: int = 2000,
    seed: int = 0,
    grid: DeviceGrid | None = None,
    *,
    start: float = 0.9,
    step: float = 0.02,
    max_cf: float = 2.5,
    skip_trivial: bool = True,
    adaptive_step: bool = False,
    workers: int | None = None,
    cache: DatasetCache | None = None,
    cache_dir: str | None = None,
    tracer: Tracer | NullTracer | None = None,
) -> tuple[list[ModuleRecord], GenerationReport]:
    """Produce labeled module records for estimator training.

    Parameters
    ----------
    n_modules:
        Sweep size (the paper generates ~2,000).
    seed:
        Root seed of the sweep.
    grid:
        Device the CF labels are computed against (default xc7z020).
    start, step, max_cf:
        CF sweep parameters (paper: 0.9 / 0.02).
    skip_trivial:
        Drop one-or-two-tile modules.
    adaptive_step:
        Sweep each module at :func:`~repro.pblock.cf_search.recommended_step`
        of its LUT count instead of the fixed ``step`` (§VI-C's
        resolution rule); records carry the step actually used and the
        report's ``n_runs`` shows the tool-run savings.
    workers:
        Worker processes the labeling fans over.  ``None``, 0 or 1 runs
        sequentially in-process; results are bitwise identical for any
        worker count (chunks are assembled in sweep order).  Falls back
        to sequential when process pools are unavailable.
    cache:
        A :class:`~repro.dataset.cache.DatasetCache` to consult and
        populate.  A warm hit returns the stored records with zero
        synthesis/CF-search work.
    cache_dir:
        Convenience: when ``cache`` is not given, build a disk-persistent
        cache rooted here.  Ignored if ``cache`` is provided.
    tracer:
        Where the ``dataset`` span tree is recorded (cache probe, sweep,
        one ``dataset.module`` span per labeled module — merged from the
        workers when the labeling fans out); defaults to the ambient
        tracer.  With the ambient tracer disabled a private throwaway
        tracer provides the :class:`GenerationReport` timing.

    Returns
    -------
    (records, report)
        Labeled records (``min_cf`` set) and the generation report.
    """
    ambient = tracer if tracer is not None else current_tracer()
    tr = ambient if ambient.enabled else Tracer()
    want_trace = ambient.enabled
    grid = grid or xc7z020()
    noise = _noise_hi()

    with tr.span("dataset", n_modules=n_modules, seed=seed) as sp_root:
        with tr.span("dataset.cache") as sp_cache:
            if cache is None and cache_dir is not None:
                cache = DatasetCache(cache_dir)
            key = None
            hit = None
            if cache is not None:
                key = dataset_key(
                    n_modules,
                    seed,
                    grid,
                    start=start,
                    step=step,
                    max_cf=max_cf,
                    skip_trivial=skip_trivial,
                    adaptive_step=adaptive_step,
                    noise_amplitude=noise,
                )
                hit = cache.get(key)
                sp_cache.incr("hits", 1 if hit is not None else 0)
                sp_cache.incr("misses", 0 if hit is not None else 1)
        if hit is not None:
            records, report = hit
            sp_root.set_attr("cache_hit", True)
            tr.metrics.counter("dataset.cache.hits").inc()
            report = dataclasses.replace(
                report,
                cache_hit=True,
                wall_s=sp_root.elapsed(),
                n_workers=1,
            )
            return list(records), report

        with tr.span("dataset.sweep") as sp_sweep:
            modules = generate_sweep(n_modules, seed=seed)
            sp_sweep.incr("n_generated", len(modules))

        effective_workers = 1
        with tr.span("dataset.label") as sp_label:
            if workers and workers > 1 and len(modules) > 1:
                effective_workers = min(workers, len(modules))
                # Several chunks per worker keep the pool busy even when
                # module sizes (and so labeling costs) are skewed.
                chunks = _chunked(modules, effective_workers * 4)
                jobs = [
                    (
                        c, grid, start, step, max_cf, skip_trivial,
                        adaptive_step, noise, want_trace,
                    )
                    for c in chunks
                ]
                try:
                    with ProcessPoolExecutor(
                        max_workers=effective_workers
                    ) as pool:
                        # map() preserves chunk order; each module labels
                        # deterministically, so the concatenation is
                        # independent of the worker count.
                        parts = list(pool.map(_label_chunk, jobs))
                except OSError:  # pools unavailable (restricted sandboxes)
                    effective_workers = 1
                    parts = [
                        _label_chunk(
                            (
                                modules, grid, start, step, max_cf,
                                skip_trivial, adaptive_step, noise, want_trace,
                            )
                        )
                    ]
            else:
                parts = [
                    _label_chunk(
                        (
                            modules, grid, start, step, max_cf, skip_trivial,
                            adaptive_step, noise, want_trace,
                        )
                    )
                ]
            # Exactly one graft per module span, whichever path labeled
            # it (pool, sequential, or the OSError fallback — the
            # fallback rebuilds `parts` wholesale, so chunks attempted by
            # a partially-failed pool are never merged twice).
            outcomes = [o for part, _traces in parts for o in part]
            if want_trace:
                for _part, traces in parts:
                    for trace in traces or ():
                        tr.graft(trace)

        records: list[ModuleRecord] = []
        n_trivial = 0
        n_runs = 0
        infeasible: list[str] = []
        for tag, payload, runs in outcomes:
            n_runs += runs
            if tag == _OK:
                records.append(payload)
            elif tag == _TRIVIAL:
                n_trivial += 1
            else:
                infeasible.append(payload)

        sp_label.incr("n_labeled", len(records))
        sp_label.incr("n_trivial", n_trivial)
        sp_label.incr("n_infeasible", len(infeasible))
        sp_label.incr("n_runs", n_runs)
        sp_root.set_attr("n_workers", effective_workers)
        m = tr.metrics
        if cache is not None:
            m.counter("dataset.cache.misses").inc()
        m.counter("dataset.tool_runs").inc(n_runs)
        m.gauge("dataset.n_workers").set(effective_workers)

        report_ = GenerationReport(
            n_requested=n_modules,
            n_labeled=len(records),
            n_trivial=n_trivial,
            n_infeasible=len(infeasible),
            infeasible_names=tuple(infeasible),
            n_runs=n_runs,
            n_workers=effective_workers,
            wall_s=sp_root.elapsed(),
            cache_hit=False,
        )
        if cache is not None and key is not None:
            with tr.span("dataset.store"):
                cache.put(key, records, report_)
    return records, report_
