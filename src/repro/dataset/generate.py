"""Dataset generation: RTL sweep -> synthesized modules -> minimal-CF labels."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.device.grid import DeviceGrid
from repro.device.parts import xc7z020
from repro.features.registry import ModuleRecord, make_record
from repro.netlist.stats import compute_stats
from repro.pblock.cf_search import InfeasibleModuleError, minimal_cf
from repro.place.quick import quick_place
from repro.rtlgen.sweep import generate_sweep
from repro.synth.mapper import opt_design, synthesize

__all__ = ["GenerationReport", "generate_dataset"]


@dataclass(frozen=True)
class GenerationReport:
    """Bookkeeping of one dataset generation run.

    Attributes
    ----------
    n_requested:
        Modules drawn from the generators.
    n_labeled:
        Modules that received a minimal-CF label.
    n_trivial:
        Modules skipped as one-or-two-tile trivial (the paper excludes
        them from the estimator study, §VIII).
    n_infeasible:
        Modules with no feasible CF up to the sweep limit (counted, not
        silently dropped).
    """

    n_requested: int
    n_labeled: int
    n_trivial: int
    n_infeasible: int
    infeasible_names: tuple[str, ...] = field(default=())


def generate_dataset(
    n_modules: int = 2000,
    seed: int = 0,
    grid: DeviceGrid | None = None,
    *,
    start: float = 0.9,
    step: float = 0.02,
    max_cf: float = 2.5,
    skip_trivial: bool = True,
) -> tuple[list[ModuleRecord], GenerationReport]:
    """Produce labeled module records for estimator training.

    Parameters
    ----------
    n_modules:
        Sweep size (the paper generates ~2,000).
    seed:
        Root seed of the sweep.
    grid:
        Device the CF labels are computed against (default xc7z020).
    start, step, max_cf:
        CF sweep parameters (paper: 0.9 / 0.02).
    skip_trivial:
        Drop one-or-two-tile modules.

    Returns
    -------
    (records, report)
        Labeled records (``min_cf`` set) and the generation report.
    """
    grid = grid or xc7z020()
    records: list[ModuleRecord] = []
    n_trivial = 0
    infeasible: list[str] = []
    for module in generate_sweep(n_modules, seed=seed):
        stats = compute_stats(opt_design(synthesize(module)))
        if skip_trivial and stats.is_trivial():
            n_trivial += 1
            continue
        report = quick_place(stats)
        try:
            found = minimal_cf(
                stats, grid, start=start, step=step, max_cf=max_cf, report=report
            )
        except InfeasibleModuleError:
            infeasible.append(stats.name)
            continue
        records.append(
            make_record(stats, report, min_cf=found.cf, family=module.family)
        )
    report_ = GenerationReport(
        n_requested=n_modules,
        n_labeled=len(records),
        n_trivial=n_trivial,
        n_infeasible=len(infeasible),
        infeasible_names=tuple(infeasible),
    )
    return records, report_
