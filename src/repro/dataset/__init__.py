"""Training-dataset pipeline (paper §VI-A, §VII).

``generate_dataset`` sweeps the RTL generators, synthesizes each module,
runs the quick placement and labels it with its minimal feasible CF
(upward sweep from 0.9 at 0.02 resolution).  ``balance_dataset`` caps each
CF bin at 75 samples, reproducing the paper's 2,000 → ~1,500 filtering
(Fig. 8).  ``save_dataset`` / ``load_dataset`` persist the labeled feature
matrix so estimator experiments don't re-run the sweep.
"""

from repro.dataset.balance import balance_dataset, cf_histogram
from repro.dataset.generate import GenerationReport, generate_dataset
from repro.dataset.io import load_dataset_arrays, save_dataset_arrays

__all__ = [
    "GenerationReport",
    "balance_dataset",
    "cf_histogram",
    "generate_dataset",
    "load_dataset_arrays",
    "save_dataset_arrays",
]
