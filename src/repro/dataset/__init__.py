"""Training-dataset pipeline (paper §VI-A, §VII).

``generate_dataset`` sweeps the RTL generators, synthesizes each module,
runs the quick placement and labels it with its minimal feasible CF
(upward sweep from 0.9 at 0.02 resolution, or §VI-C's adaptive per-module
resolution behind ``adaptive_step=True``).  Labeling fans out over a
process pool (``workers=N``) with results bitwise identical for any
worker count, and a content-addressed :class:`DatasetCache` makes one
generation durable across runs and sessions.  ``balance_dataset`` caps
each CF bin at 75 samples, reproducing the paper's 2,000 → ~1,500
filtering (Fig. 8).  ``save_dataset_arrays`` / ``load_dataset_arrays``
persist the labeled feature matrix so estimator experiments don't re-run
the sweep.
"""

from repro.dataset.balance import balance_dataset, cf_histogram
from repro.dataset.cache import DatasetCache, dataset_key
from repro.dataset.generate import GenerationReport, generate_dataset
from repro.dataset.io import (
    load_dataset_arrays,
    load_dataset_steps,
    load_generation_report,
    save_dataset_arrays,
    save_generation_report,
)

__all__ = [
    "DatasetCache",
    "GenerationReport",
    "balance_dataset",
    "cf_histogram",
    "dataset_key",
    "generate_dataset",
    "load_dataset_arrays",
    "load_dataset_steps",
    "load_generation_report",
    "save_dataset_arrays",
    "save_generation_report",
]
