"""Content-addressed, persistent dataset cache.

Every estimator experiment (Table 2, Figs. 7-13, the CV/rf-size/noise
ablations) starts from the same ~2,000-module labeled sweep, and the
sweep is by far the most expensive input: each module runs synthesis,
optimization, quick placement and a multi-run minimal-CF search.
:class:`DatasetCache` makes one generation durable, the same way
:class:`~repro.flow.cache.ModuleCache` makes pre-implementations durable:
a ``(records, report)`` pair is stored under a key derived from
everything that determines the sweep —

* the sweep size and root seed,
* the device grid geometry the CF labels target,
* the CF sweep parameters (start / step / max_cf, adaptive resolution,
  trivial-module filtering), and
* the placer-noise amplitude in effect (the noise ablation regenerates
  under an override, which must never collide with the default sweep).

Entries live in an in-memory dict with an optional disk layer underneath
(one pickle file per key inside ``cache_dir``, written atomically), so a
benchmark session or a second ``repro dataset`` run warm-starts with
zero synthesis and zero CF-search tool runs.  Unreadable or corrupt disk
entries degrade to a miss — a cache must fall back to "cold", never
crash generation.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import TYPE_CHECKING

from repro.device.grid import DeviceGrid
from repro.flow.cache import CacheStats, grid_fingerprint

if TYPE_CHECKING:  # circular: generate imports the cache for its store
    from repro.dataset.generate import GenerationReport
    from repro.features.registry import ModuleRecord

__all__ = ["DatasetCache", "dataset_key"]

#: Bump when the on-disk entry layout (or ModuleRecord shape) changes;
#: part of every key, so old stores read as cold instead of corrupt.
DATASET_CACHE_FORMAT = 1

#: A cached dataset: the labeled records plus their generation report.
DatasetEntry = tuple  # (list[ModuleRecord], GenerationReport)


def _digest(*parts: object) -> str:
    """SHA-256 over ``repr`` of the parts (stable across processes)."""
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")
    return h.hexdigest()


def dataset_key(
    n_modules: int,
    seed: int,
    grid: DeviceGrid,
    *,
    start: float,
    step: float,
    max_cf: float,
    skip_trivial: bool,
    adaptive_step: bool,
    noise_amplitude: float,
) -> str:
    """The content-addressed key of one generation configuration."""
    return _digest(
        "dataset",
        DATASET_CACHE_FORMAT,
        n_modules,
        seed,
        grid_fingerprint(grid),
        start,
        step,
        max_cf,
        skip_trivial,
        adaptive_step,
        noise_amplitude,
    )


class DatasetCache:
    """Two-layer (memory + optional disk) store of generated datasets.

    Parameters
    ----------
    cache_dir:
        Directory for the persistent layer; ``None`` keeps the cache
        purely in-memory.  Each entry is one ``<key>.pkl`` file written
        atomically (temp file + rename), so concurrent generations
        sharing a directory never observe torn entries.
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None) -> None:
        self._mem: dict[str, "DatasetEntry"] = {}
        self.cache_dir = Path(cache_dir).expanduser() if cache_dir else None
        self.stats = CacheStats()

    # ------------------------------------------------------------------ keys

    key = staticmethod(dataset_key)

    # ------------------------------------------------------------------ store

    def _path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.pkl"

    def get(self, key: str) -> "tuple[list[ModuleRecord], GenerationReport] | None":
        """Look a key up: memory first, then disk.  ``None`` on miss."""
        entry = self._mem.get(key)
        if entry is not None:
            self.stats.mem_hits += 1
            return entry
        if self.cache_dir is not None:
            path = self._path(key)
            try:
                with open(path, "rb") as fh:
                    entry = pickle.load(fh)
                if not (isinstance(entry, tuple) and len(entry) == 2):
                    raise pickle.UnpicklingError("bad dataset entry shape")
            except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                    ImportError, IndexError, TypeError):
                entry = None
                try:  # corrupt entry: drop it so the next run regenerates
                    path.unlink(missing_ok=True)
                except OSError:
                    pass
            if entry is not None:
                self._mem[key] = entry
                self.stats.disk_hits += 1
                return entry
        self.stats.misses += 1
        return None

    def put(
        self,
        key: str,
        records: "list[ModuleRecord]",
        report: "GenerationReport",
    ) -> None:
        """Store an entry in memory and (when configured) on disk."""
        entry = (list(records), report)
        self._mem[key] = entry
        self.stats.stores += 1
        if self.cache_dir is None:
            return
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            path = self._path(key)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            with open(tmp, "wb") as fh:
                pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            # Read-only or full filesystem: keep the in-memory layer only.
            pass

    # ------------------------------------------------------------------ admin

    def __len__(self) -> int:
        return len(self._mem)

    def __contains__(self, key: str) -> bool:
        if key in self._mem:
            return True
        return self.cache_dir is not None and self._path(key).exists()

    @property
    def n_disk_entries(self) -> int:
        """Entries currently persisted on disk (0 for in-memory caches)."""
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*.pkl"))  # repro: noqa[DET005] order-free count of entries

    def clear(self, *, disk: bool = False) -> None:
        """Drop the in-memory layer; also the disk layer when ``disk``."""
        self._mem.clear()
        if disk and self.cache_dir is not None and self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*.pkl"):  # repro: noqa[DET005] unconditional delete of every entry; order is irrelevant
                try:
                    path.unlink()
                except OSError:
                    pass

    def describe(self) -> str:
        """One-line summary for logs and the CLI."""
        where = str(self.cache_dir) if self.cache_dir else "<memory>"
        s = self.stats
        return (
            f"dataset-cache[{where}]: {len(self._mem)} in memory, "
            f"{self.n_disk_entries} on disk; "
            f"{s.hits} hits ({s.mem_hits} mem / {s.disk_hits} disk), "
            f"{s.misses} misses"
        )
