"""Dataset persistence.

Records are saved as the "all"-feature matrix plus labels and metadata;
that is sufficient for every estimator experiment (each feature set is a
column subset of "all") without re-running the CF sweep.  The per-record
sweep resolution rides along so re-binning (balancing, histograms) stays
correct for non-default and adaptive-resolution sweeps, and a
:class:`~repro.dataset.generate.GenerationReport` can be archived as
plain JSON next to the arrays (the CI perf-smoke uploads it).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.dataset.generate import GenerationReport
from repro.features.registry import FeatureExtractor, ModuleRecord, feature_names
from repro.utils.serialization import load_arrays, save_arrays

__all__ = [
    "load_dataset_arrays",
    "load_dataset_steps",
    "load_generation_report",
    "save_dataset_arrays",
    "save_generation_report",
]


def save_dataset_arrays(records: Sequence[ModuleRecord], path: str | Path) -> None:
    """Save labeled records to a compressed ``.npz``."""
    ex = FeatureExtractor("all")
    X = ex.matrix(list(records))
    y = np.array([r.min_cf for r in records])
    names = np.array([r.name for r in records])
    families = np.array([r.family for r in records])
    steps = np.array([r.sweep_step for r in records])
    cols = np.array(ex.names)
    save_arrays(
        path, X=X, y=y, names=names, families=families, columns=cols, steps=steps
    )


def load_dataset_arrays(
    path: str | Path, feature_set: str = "all"
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Load ``(X, y, names, families)`` with ``X`` restricted to a set.

    Raises
    ------
    ValueError
        If the stored column order no longer matches the library's.
    """
    data = load_arrays(path)
    stored_cols = [str(c) for c in data["columns"]]
    want = feature_names(feature_set)
    try:
        sel = [stored_cols.index(c) for c in want]
    except ValueError as exc:
        raise ValueError(
            f"{path}: stored columns {stored_cols} lack features {want}"
        ) from exc
    return data["X"][:, sel], data["y"], data["names"], data["families"]


def load_dataset_steps(path: str | Path) -> np.ndarray:
    """Per-record sweep resolutions of a saved dataset.

    Files written before the resolution-aware format default to the
    paper's uniform 0.02 grid.
    """
    data = load_arrays(path)
    if "steps" in data:
        return np.asarray(data["steps"], dtype=np.float64)
    return np.full(len(data["y"]), 0.02)


def save_generation_report(report: GenerationReport, path: str | Path) -> None:
    """Archive a generation report as plain JSON."""
    Path(path).write_text(
        json.dumps(report.to_json_dict(), indent=2, sort_keys=True)
    )


def load_generation_report(path: str | Path) -> GenerationReport:
    """Rebuild a report saved by :func:`save_generation_report`."""
    data = json.loads(Path(path).read_text())
    return GenerationReport(
        n_requested=int(data["n_requested"]),
        n_labeled=int(data["n_labeled"]),
        n_trivial=int(data["n_trivial"]),
        n_infeasible=int(data["n_infeasible"]),
        infeasible_names=tuple(data.get("infeasible_names", ())),
        n_runs=int(data.get("n_runs", 0)),
        n_workers=int(data.get("n_workers", 1)),
        wall_s=float(data.get("wall_s", 0.0)),
        cache_hit=bool(data.get("cache_hit", False)),
    )
