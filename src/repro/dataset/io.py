"""Dataset persistence.

Records are saved as the "all"-feature matrix plus labels and metadata;
that is sufficient for every estimator experiment (each feature set is a
column subset of "all") without re-running the CF sweep.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from repro.features.registry import FeatureExtractor, ModuleRecord, feature_names
from repro.utils.serialization import load_arrays, save_arrays

__all__ = ["save_dataset_arrays", "load_dataset_arrays"]


def save_dataset_arrays(records: Sequence[ModuleRecord], path: str | Path) -> None:
    """Save labeled records to a compressed ``.npz``."""
    ex = FeatureExtractor("all")
    X = ex.matrix(list(records))
    y = np.array([r.min_cf for r in records])
    names = np.array([r.name for r in records])
    families = np.array([r.family for r in records])
    cols = np.array(ex.names)
    save_arrays(path, X=X, y=y, names=names, families=families, columns=cols)


def load_dataset_arrays(
    path: str | Path, feature_set: str = "all"
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Load ``(X, y, names, families)`` with ``X`` restricted to a set.

    Raises
    ------
    ValueError
        If the stored column order no longer matches the library's.
    """
    data = load_arrays(path)
    stored_cols = [str(c) for c in data["columns"]]
    want = feature_names(feature_set)
    try:
        sel = [stored_cols.index(c) for c in want]
    except ValueError as exc:
        raise ValueError(
            f"{path}: stored columns {stored_cols} lack features {want}"
        ) from exc
    return data["X"][:, sel], data["y"], data["names"], data["families"]
