"""One-hidden-layer MLP regressor with ReLU and ADAM (paper §VI-B).

The paper's network: a single fully connected hidden layer (25 neurons is
robust for their inputs), ReLU nonlinearity, ADAM minimizing MSE, no
dropout.  Inputs and targets are standardized internally.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import stream

__all__ = ["MLPRegressor"]


class MLPRegressor:
    """Shallow feed-forward regressor.

    Parameters
    ----------
    hidden:
        Hidden-layer width (paper: 25).
    epochs:
        Training epochs over the full set.
    batch_size:
        Minibatch size.
    lr:
        ADAM step size.
    seed:
        Initialization/shuffling seed.
    """

    def __init__(
        self,
        hidden: int = 25,
        epochs: int = 400,
        batch_size: int = 32,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> None:
        if hidden < 1:
            raise ValueError(f"hidden must be >= 1, got {hidden}")
        if epochs < 1 or batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self._params: dict[str, np.ndarray] | None = None
        self.loss_history_: list[float] = []

    # ------------------------------------------------------------------ fit

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPRegressor":
        """Train with ADAM on standardized data."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes: X{X.shape}, y{y.shape}")
        n, d = X.shape
        if n < 2:
            raise ValueError("need at least 2 samples")

        self._x_mu = X.mean(axis=0)
        x_sd = X.std(axis=0)
        x_sd[x_sd == 0] = 1.0
        self._x_sd = x_sd
        self._y_mu = float(y.mean())
        self._y_sd = float(y.std()) or 1.0
        Z = (X - self._x_mu) / self._x_sd
        t = (y - self._y_mu) / self._y_sd

        rng = stream(self.seed, "mlp", "init")
        h = self.hidden
        params = {
            "W1": rng.normal(0.0, np.sqrt(2.0 / d), size=(d, h)),
            "b1": np.zeros(h),
            "W2": rng.normal(0.0, np.sqrt(2.0 / h), size=(h, 1)),
            "b2": np.zeros(1),
        }
        m = {k: np.zeros_like(v) for k, v in params.items()}
        v = {k: np.zeros_like(v_) for k, v_ in params.items()}
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        self.loss_history_ = []
        shuffle_rng = stream(self.seed, "mlp", "shuffle")

        for _epoch in range(self.epochs):
            order = shuffle_rng.permutation(n)
            epoch_loss = 0.0
            for lo in range(0, n, self.batch_size):
                batch = order[lo : lo + self.batch_size]
                xb, tb = Z[batch], t[batch]
                # Forward.
                a1 = xb @ params["W1"] + params["b1"]
                h1 = np.maximum(a1, 0.0)
                out = (h1 @ params["W2"] + params["b2"]).ravel()
                err = out - tb
                epoch_loss += float((err**2).sum())
                # Backward (MSE).
                g_out = (2.0 / batch.size) * err[:, None]
                grads = {
                    "W2": h1.T @ g_out,
                    "b2": g_out.sum(axis=0),
                }
                g_h = (g_out @ params["W2"].T) * (a1 > 0)
                grads["W1"] = xb.T @ g_h
                grads["b1"] = g_h.sum(axis=0)
                # ADAM update.
                step += 1
                for k in params:
                    m[k] = beta1 * m[k] + (1 - beta1) * grads[k]
                    v[k] = beta2 * v[k] + (1 - beta2) * grads[k] ** 2
                    m_hat = m[k] / (1 - beta1**step)
                    v_hat = v[k] / (1 - beta2**step)
                    params[k] -= self.lr * m_hat / (np.sqrt(v_hat) + eps)
            self.loss_history_.append(epoch_loss / n)
        self._params = params
        return self

    # ------------------------------------------------------------------ predict

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets; requires a prior :meth:`fit`."""
        if self._params is None:
            raise RuntimeError("predict() before fit()")
        X = np.asarray(X, dtype=np.float64)
        Z = (X - self._x_mu) / self._x_sd
        h1 = np.maximum(Z @ self._params["W1"] + self._params["b1"], 0.0)
        out = (h1 @ self._params["W2"] + self._params["b2"]).ravel()
        return out * self._y_sd + self._y_mu
