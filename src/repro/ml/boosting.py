"""Gradient-boosted regression trees (an extension beyond the paper).

The paper evaluates linear regression, a DT, an RF and a shallow NN and
notes that "increasing the expressiveness of our estimator does not
always lead to better results".  Gradient boosting is the natural next
model family to test that observation against; the ablation benchmark
compares it with the paper's four.
"""

from __future__ import annotations

import numpy as np

from repro.ml.ensemble import StackedTrees, stack_trees
from repro.ml.tree import DecisionTreeRegressor
from repro.utils.rng import derive_seed

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor:
    """Least-squares gradient boosting with shallow CART base learners.

    Parameters
    ----------
    n_estimators:
        Boosting rounds.
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth:
        Base-learner depth (shallow trees, unlike the RF's depth-20).
    subsample:
        Fraction of samples drawn (without replacement) per round;
        values < 1 give stochastic gradient boosting.
    seed:
        Subsampling seed.
    engine:
        Split-search engine of the base learners (``"fast"`` or
        ``"reference"``); both fit bitwise identical boosters.
    """

    def __init__(
        self,
        n_estimators: int = 200,
        learning_rate: float = 0.05,
        max_depth: int = 3,
        subsample: float = 1.0,
        seed: int = 0,
        engine: str = "fast",
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0 < learning_rate <= 1:
            raise ValueError(f"learning_rate must be in (0, 1], got {learning_rate}")
        if not 0 < subsample <= 1:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.seed = seed
        self.engine = engine
        self.base_: float = 0.0
        self.trees_: list[DecisionTreeRegressor] = []
        self.train_losses_: list[float] = []
        self._stacked: StackedTrees | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        """Fit by stage-wise residual regression."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes: X{X.shape}, y{y.shape}")
        n = X.shape[0]
        if n == 0:
            raise ValueError("empty training set")

        self.base_ = float(y.mean())
        pred = np.full(n, self.base_)
        self.trees_ = []
        self.train_losses_ = []
        self._stacked = None
        rng = np.random.default_rng(derive_seed(self.seed, "gbrt"))
        n_sub = max(1, int(round(n * self.subsample)))
        for t in range(self.n_estimators):
            residual = y - pred
            idx = (
                rng.choice(n, size=n_sub, replace=False)
                if n_sub < n
                else np.arange(n)
            )
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=2,
                seed=derive_seed(self.seed, "gbrt-tree", t),
                engine=self.engine,
            )
            tree.fit(X[idx], residual[idx])
            pred += self.learning_rate * tree.predict(X)
            self.trees_.append(tree)
            self.train_losses_.append(float(np.mean((y - pred) ** 2)))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Sum of the shrunken stage predictions (batched across stages)."""
        if not self.trees_:
            raise RuntimeError("predict() before fit()")
        X = np.asarray(X, dtype=np.float64)
        if self._stacked is None or self._stacked.n_trees != len(self.trees_):
            self._stacked = stack_trees(self.trees_)
        rows = self._stacked.tree_values(X)
        # Stage order, one shrunken add per stage: bitwise identical to
        # the historical per-tree loop.
        out = np.full(X.shape[0], self.base_)
        for row in rows:
            out += self.learning_rate * row
        return out

    @property
    def feature_importances_(self) -> np.ndarray | None:
        """Average impurity importances over the stages."""
        if not self.trees_:
            return None
        acc = np.zeros_like(self.trees_[0].feature_importances_)
        for tree in self.trees_:
            acc += tree.feature_importances_
        total = acc.sum()
        return acc / total if total > 0 else acc
