"""Random forest regressor: bagged CART trees with feature subsampling.

The paper's configuration is 1,000 trees of depth 20 trained on MSE
(§VI-B); importances are the average of the trees' impurity importances
(Fig. 12 uses them with cnvW1A1 as the test set).

Fitting is seed-stable under parallelism: every tree's bootstrap sample
is pre-drawn from one sequential stream and every tree gets its own
derived seed, so farming the (independent) tree fits over ``n_workers``
processes produces exactly the forest the sequential loop produces, in
the same order.  Prediction batches all trees through one stacked node
arena (:mod:`repro.ml.ensemble`) and accumulates rows in tree order, so
results stay bitwise identical to the historical per-tree loop.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.ml.ensemble import StackedTrees, stack_trees
from repro.ml.tree import DecisionTreeRegressor
from repro.utils.rng import derive_seed, stream

__all__ = ["RandomForestRegressor"]


def _fit_tree_batch(
    args: tuple[np.ndarray, np.ndarray, dict, list[tuple[int, int, np.ndarray]]],
) -> list[DecisionTreeRegressor]:
    """Worker entry point (module-level so it pickles).

    Fits the batch's trees in index order; each job is
    ``(tree_index, tree_seed, bootstrap_idx)``.
    """
    X, y, params, jobs = args
    fitted = []
    for _t, tree_seed, idx in jobs:
        tree = DecisionTreeRegressor(seed=tree_seed, **params)
        fitted.append(tree.fit(X[idx], y[idx]))
    return fitted


class RandomForestRegressor:
    """Bootstrap-aggregated regression trees.

    Parameters
    ----------
    n_estimators:
        Number of trees (paper: 1,000; smaller values give nearly the
        same error at a fraction of the cost — see the ablation bench).
    max_depth:
        Depth of each tree (paper: 20).
    max_features:
        Per-split feature subsampling (default ``"third"``, the classic
        regression-forest choice).
    min_samples_leaf:
        Minimum samples per leaf.
    seed:
        Root seed; trees get independent derived streams.
    engine:
        Split-search engine of the member trees (``"fast"`` or
        ``"reference"``); both grow bitwise identical forests.
    n_workers:
        Worker processes for the tree fits.  ``None``, 0 or 1 fits
        sequentially in-process; the fitted forest is identical for any
        worker count.  Falls back to sequential when process pools are
        unavailable.
    """

    def __init__(
        self,
        n_estimators: int = 1000,
        max_depth: int = 20,
        max_features: int | str | None = "third",
        min_samples_leaf: int = 1,
        seed: int = 0,
        engine: str = "fast",
        n_workers: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.engine = engine
        self.n_workers = n_workers
        self.trees_: list[DecisionTreeRegressor] = []
        self.feature_importances_: np.ndarray | None = None
        self._stacked: StackedTrees | None = None

    def _tree_params(self) -> dict:
        return {
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "engine": self.engine,
        }

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        """Fit all trees on bootstrap resamples."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes: X{X.shape}, y{y.shape}")
        n = X.shape[0]
        if n == 0:
            raise ValueError("empty training set")
        self._stacked = None

        # Bootstrap indices come from one sequential stream regardless of
        # how the fits are distributed, so the forest is a pure function
        # of (seed, data) — never of the worker count.
        boot_rng = stream(self.seed, "forest", "bootstrap")
        jobs = [
            (
                t,
                derive_seed(self.seed, "forest", "tree", t),
                boot_rng.integers(0, n, size=n),
            )
            for t in range(self.n_estimators)
        ]

        params = self._tree_params()
        trees: list[DecisionTreeRegressor] | None = None
        if self.n_workers and self.n_workers > 1 and len(jobs) > 1:
            workers = min(self.n_workers, len(jobs))
            # Contiguous batches keep per-worker pickling to one X/y copy
            # per batch instead of one per tree.
            size, extra = divmod(len(jobs), workers)
            batches, at = [], 0
            for i in range(workers):
                end = at + size + (1 if i < extra else 0)
                batches.append((X, y, params, jobs[at:end]))
                at = end
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    # map() preserves batch order; concatenation restores
                    # the sequential tree order exactly.
                    trees = [
                        t for part in pool.map(_fit_tree_batch, batches)
                        for t in part
                    ]
            except OSError:  # process pools unavailable
                trees = None
        if trees is None:
            trees = _fit_tree_batch((X, y, params, jobs))

        self.trees_ = trees
        importances = np.zeros(X.shape[1])
        for tree in self.trees_:
            importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Average of the trees' predictions (batched across trees)."""
        if not self.trees_:
            raise RuntimeError("predict() before fit()")
        X = np.asarray(X, dtype=np.float64)
        if self._stacked is None or self._stacked.n_trees != len(self.trees_):
            self._stacked = stack_trees(self.trees_)
        rows = self._stacked.tree_values(X)
        # Accumulate in tree order: bitwise identical to the historical
        # per-tree loop (np.sum's pairwise reduction would not be).
        acc = np.zeros(X.shape[0])
        for row in rows:
            acc += row
        return acc / len(self.trees_)
