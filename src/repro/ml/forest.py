"""Random forest regressor: bagged CART trees with feature subsampling.

The paper's configuration is 1,000 trees of depth 20 trained on MSE
(§VI-B); importances are the average of the trees' impurity importances
(Fig. 12 uses them with cnvW1A1 as the test set).
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeRegressor
from repro.utils.rng import derive_seed, stream

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor:
    """Bootstrap-aggregated regression trees.

    Parameters
    ----------
    n_estimators:
        Number of trees (paper: 1,000; smaller values give nearly the
        same error at a fraction of the cost — see the ablation bench).
    max_depth:
        Depth of each tree (paper: 20).
    max_features:
        Per-split feature subsampling (default ``"third"``, the classic
        regression-forest choice).
    min_samples_leaf:
        Minimum samples per leaf.
    seed:
        Root seed; trees get independent derived streams.
    """

    def __init__(
        self,
        n_estimators: int = 1000,
        max_depth: int = 20,
        max_features: int | str | None = "third",
        min_samples_leaf: int = 1,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.trees_: list[DecisionTreeRegressor] = []
        self.feature_importances_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        """Fit all trees on bootstrap resamples."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes: X{X.shape}, y{y.shape}")
        n = X.shape[0]
        if n == 0:
            raise ValueError("empty training set")
        self.trees_ = []
        importances = np.zeros(X.shape[1])
        boot_rng = stream(self.seed, "forest", "bootstrap")
        for t in range(self.n_estimators):
            idx = boot_rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=derive_seed(self.seed, "forest", "tree", t),
            )
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
            importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Average of the trees' predictions."""
        if not self.trees_:
            raise RuntimeError("predict() before fit()")
        X = np.asarray(X, dtype=np.float64)
        acc = np.zeros(X.shape[0])
        for tree in self.trees_:
            acc += tree.predict(X)
        return acc / len(self.trees_)
