"""Model persistence: serialize trained estimators to plain JSON.

All four model types round-trip losslessly (trees store their node
arrays, the MLP its weights, linear models their coefficients), so a CF
estimator trained once on the 2,000-module sweep can be reused across
sessions and shipped alongside a flow — no pickle, no code execution on
load.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import LinearRegression
from repro.ml.mlp import MLPRegressor
from repro.ml.tree import DecisionTreeRegressor, _Node

__all__ = ["model_to_dict", "model_from_dict"]

_FORMAT = 1


def _arr(a: np.ndarray | None) -> list | None:
    return None if a is None else np.asarray(a).tolist()


# ----------------------------------------------------------------- trees


def _tree_nodes_to_list(root: _Node) -> list[dict[str, Any]]:
    """Flatten a tree into a list of dicts with child indices."""
    nodes: list[dict[str, Any]] = []

    def visit(node: _Node) -> int:
        idx = len(nodes)
        nodes.append(
            {
                "feature": node.feature,
                "threshold": node.threshold,
                "value": node.value,
                "left": -1,
                "right": -1,
            }
        )
        if not node.is_leaf:
            nodes[idx]["left"] = visit(node.left)
            nodes[idx]["right"] = visit(node.right)
        return idx

    visit(root)
    return nodes


def _tree_nodes_from_list(items: list[dict[str, Any]]) -> _Node:
    built = [None] * len(items)

    def build(idx: int) -> _Node:
        if built[idx] is not None:
            return built[idx]
        spec = items[idx]
        node = _Node()
        node.feature = int(spec["feature"])
        node.threshold = float(spec["threshold"])
        node.value = float(spec["value"])
        if spec["left"] >= 0:
            node.left = build(spec["left"])
            node.right = build(spec["right"])
        built[idx] = node
        return node

    return build(0)


def _dt_to_dict(model: DecisionTreeRegressor) -> dict[str, Any]:
    if model._root is None:
        raise ValueError("cannot serialize an unfitted tree")
    return {
        "params": {
            "max_depth": model.max_depth,
            "min_samples_leaf": model.min_samples_leaf,
            "min_samples_split": model.min_samples_split,
            "max_features": model.max_features,
            "seed": model.seed,
        },
        "n_features": model._n_features,
        "nodes": _tree_nodes_to_list(model._root),
        "importances": _arr(model.feature_importances_),
    }


def _dt_from_dict(data: dict[str, Any]) -> DecisionTreeRegressor:
    model = DecisionTreeRegressor(**data["params"])
    model._flat = None
    model._root = _tree_nodes_from_list(data["nodes"])
    model._n_features = int(data["n_features"])
    model.feature_importances_ = (
        None if data["importances"] is None else np.asarray(data["importances"])
    )
    return model


# ----------------------------------------------------------------- dispatch


def model_to_dict(model: Any) -> dict[str, Any]:
    """Serialize any supported regressor to a JSON-compatible dict."""
    if isinstance(model, LinearRegression):
        if model.coef_ is None:
            raise ValueError("cannot serialize an unfitted model")
        payload = {
            "ridge": model.ridge,
            "coef": _arr(model.coef_),
            "intercept": model.intercept_,
            "mu": _arr(model._mu),
            "sigma": _arr(model._sigma),
        }
        kind = "linear"
    elif isinstance(model, DecisionTreeRegressor):
        payload = _dt_to_dict(model)
        kind = "tree"
    elif isinstance(model, RandomForestRegressor):
        if not model.trees_:
            raise ValueError("cannot serialize an unfitted forest")
        payload = {
            "params": {
                "n_estimators": model.n_estimators,
                "max_depth": model.max_depth,
                "max_features": model.max_features,
                "min_samples_leaf": model.min_samples_leaf,
                "seed": model.seed,
            },
            "trees": [_dt_to_dict(t) for t in model.trees_],
            "importances": _arr(model.feature_importances_),
        }
        kind = "forest"
    elif isinstance(model, GradientBoostingRegressor):
        if not model.trees_:
            raise ValueError("cannot serialize an unfitted booster")
        payload = {
            "params": {
                "n_estimators": model.n_estimators,
                "learning_rate": model.learning_rate,
                "max_depth": model.max_depth,
                "subsample": model.subsample,
                "seed": model.seed,
            },
            "base": model.base_,
            "trees": [_dt_to_dict(t) for t in model.trees_],
        }
        kind = "gbrt"
    elif isinstance(model, MLPRegressor):
        if model._params is None:
            raise ValueError("cannot serialize an unfitted MLP")
        payload = {
            "params": {
                "hidden": model.hidden,
                "epochs": model.epochs,
                "batch_size": model.batch_size,
                "lr": model.lr,
                "seed": model.seed,
            },
            "weights": {k: _arr(v) for k, v in model._params.items()},
            "x_mu": _arr(model._x_mu),
            "x_sd": _arr(model._x_sd),
            "y_mu": model._y_mu,
            "y_sd": model._y_sd,
        }
        kind = "mlp"
    else:
        raise TypeError(f"unsupported model type {type(model).__name__}")
    return {"format": _FORMAT, "kind": kind, "payload": payload}


def model_from_dict(data: dict[str, Any]) -> Any:
    """Rebuild a regressor serialized by :func:`model_to_dict`."""
    if data.get("format") != _FORMAT:
        raise ValueError(f"unsupported model format {data.get('format')!r}")
    kind = data["kind"]
    payload = data["payload"]
    if kind == "linear":
        model = LinearRegression(ridge=payload["ridge"])
        model.coef_ = np.asarray(payload["coef"])
        model.intercept_ = float(payload["intercept"])
        model._mu = np.asarray(payload["mu"])
        model._sigma = np.asarray(payload["sigma"])
        return model
    if kind == "tree":
        return _dt_from_dict(payload)
    if kind == "forest":
        model = RandomForestRegressor(**payload["params"])
        model.trees_ = [_dt_from_dict(t) for t in payload["trees"]]
        model.feature_importances_ = (
            None
            if payload["importances"] is None
            else np.asarray(payload["importances"])
        )
        return model
    if kind == "gbrt":
        model = GradientBoostingRegressor(**payload["params"])
        model.base_ = float(payload["base"])
        model.trees_ = [_dt_from_dict(t) for t in payload["trees"]]
        return model
    if kind == "mlp":
        p = payload["params"]
        model = MLPRegressor(**p)
        model._params = {k: np.asarray(v) for k, v in payload["weights"].items()}
        model._x_mu = np.asarray(payload["x_mu"])
        model._x_sd = np.asarray(payload["x_sd"])
        model._y_mu = float(payload["y_mu"])
        model._y_sd = float(payload["y_sd"])
        return model
    raise ValueError(f"unknown model kind {kind!r}")
