"""Batched prediction across an ensemble of CART trees.

The forest and the booster both spend their inference time walking many
trees one after another.  Stacking every tree's flattened node arrays
into one arena (child indices offset into the concatenation) lets a
single level-synchronous walk advance *all* (tree, sample) cursors at
once — one numpy pass per tree level instead of one Python-level loop
iteration per tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ml.tree import DecisionTreeRegressor

__all__ = ["StackedTrees", "stack_trees"]


@dataclass(frozen=True)
class StackedTrees:
    """All trees of an ensemble as one flat node arena.

    Attributes
    ----------
    feats, thrs, lefts, rights, values:
        Concatenated per-node arrays; ``lefts``/``rights`` are global
        indices into the arena (-1 at leaves).
    roots:
        Arena index of each tree's root, in ensemble order.
    """

    feats: np.ndarray
    thrs: np.ndarray
    lefts: np.ndarray
    rights: np.ndarray
    values: np.ndarray
    roots: np.ndarray

    @property
    def n_trees(self) -> int:
        """Trees in the arena."""
        return len(self.roots)

    def tree_values(self, X: np.ndarray) -> np.ndarray:
        """Per-tree leaf values for every sample, shape ``(n_trees, n)``.

        Level-synchronous walk: every (tree, sample) cursor starts at its
        tree's root and descends one level per iteration until all rest
        at leaves.  Row ``t`` equals ``trees[t].predict(X)`` bitwise.
        """
        X = np.asarray(X, dtype=np.float64)
        n = X.shape[0]
        idx = np.broadcast_to(self.roots[:, None], (self.n_trees, n)).copy()
        cols = np.broadcast_to(np.arange(n), (self.n_trees, n))
        active = self.lefts[idx] >= 0
        while active.any():
            cur = idx[active]
            go_left = X[cols[active], self.feats[cur]] <= self.thrs[cur]
            idx[active] = np.where(go_left, self.lefts[cur], self.rights[cur])
            active = self.lefts[idx] >= 0
        return self.values[idx]


def stack_trees(trees: Sequence[DecisionTreeRegressor]) -> StackedTrees:
    """Build the arena from fitted trees (ensemble order preserved)."""
    if not trees:
        raise ValueError("cannot stack an empty ensemble")
    feats, thrs, lefts, rights, values, roots = [], [], [], [], [], []
    at = 0
    for tree in trees:
        f, t, l, r, v = tree._flat_arrays()
        feats.append(f)
        thrs.append(t)
        # Leaves stay -1; internal children shift by the arena offset.
        lefts.append(np.where(l >= 0, l + at, -1).astype(np.int64))
        rights.append(np.where(r >= 0, r + at, -1).astype(np.int64))
        values.append(v)
        roots.append(at)
        at += len(f)
    return StackedTrees(
        feats=np.concatenate(feats),
        thrs=np.concatenate(thrs),
        lefts=np.concatenate(lefts),
        rights=np.concatenate(rights),
        values=np.concatenate(values),
        roots=np.asarray(roots, dtype=np.int64),
    )
