"""Regression metrics.

The paper reports the *mean relative error* (|pred - true| / true) for
Table II and the *median absolute error* for the cnvW1A1 transfer study
(Fig. 11); both are provided along with the standard MSE/MAE/R².
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mean_squared_error",
    "mean_absolute_error",
    "mean_relative_error",
    "median_absolute_relative_error",
    "r2_score",
]


def _check(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty inputs")
    return y_true, y_pred


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean of squared residuals (the training loss of the NN/RF, §VI-B)."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean of absolute residuals."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def mean_relative_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean of ``|pred - true| / true`` (Table II's metric)."""
    y_true, y_pred = _check(y_true, y_pred)
    if np.any(y_true == 0):
        raise ValueError("relative error undefined for zero targets")
    return float(np.mean(np.abs(y_pred - y_true) / np.abs(y_true)))


def median_absolute_relative_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Median of ``|pred - true| / true`` (Fig. 11's metric)."""
    y_true, y_pred = _check(y_true, y_pred)
    if np.any(y_true == 0):
        raise ValueError("relative error undefined for zero targets")
    return float(np.median(np.abs(y_pred - y_true) / np.abs(y_true)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination."""
    y_true, y_pred = _check(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - np.mean(y_true)) ** 2))
    if ss_tot == 0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot
