"""Linear regression (least squares with standardization and optional
ridge damping) — the paper's nine-input baseline (§VI-B, mean relative
error 9.4%).
"""

from __future__ import annotations

import numpy as np

__all__ = ["LinearRegression"]


class LinearRegression:
    """Ordinary least squares on standardized features.

    Parameters
    ----------
    ridge:
        L2 damping added to the normal equations; 0 reproduces OLS, a
        small positive value stabilizes nearly-collinear feature sets.
    """

    def __init__(self, ridge: float = 1e-8) -> None:
        if ridge < 0:
            raise ValueError(f"ridge must be >= 0, got {ridge}")
        self.ridge = ridge
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._mu: np.ndarray | None = None
        self._sigma: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        """Fit on ``(n_samples, n_features)`` / ``(n_samples,)``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes: X{X.shape}, y{y.shape}")
        if X.shape[0] < 2:
            raise ValueError("need at least 2 samples")
        self._mu = X.mean(axis=0)
        sigma = X.std(axis=0)
        sigma[sigma == 0] = 1.0
        self._sigma = sigma
        Z = (X - self._mu) / sigma
        yc = y - y.mean()
        A = Z.T @ Z + self.ridge * np.eye(Z.shape[1])
        b = Z.T @ yc
        self.coef_ = np.linalg.solve(A, b)
        self.intercept_ = float(y.mean())
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets; requires a prior :meth:`fit`."""
        if self.coef_ is None:
            raise RuntimeError("predict() before fit()")
        X = np.asarray(X, dtype=np.float64)
        Z = (X - self._mu) / self._sigma
        return Z @ self.coef_ + self.intercept_
