"""Deterministic dataset splits (80/20 train/test, optional k-fold)."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import stream
from repro.utils.validation import check_in_range, check_positive

__all__ = ["train_test_split", "kfold_indices"]


def train_test_split(
    n_samples: int, test_fraction: float = 0.2, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Shuffled index split.

    Returns ``(train_idx, test_idx)``; the paper holds out 20% (§VII).
    """
    check_positive(n_samples, "n_samples")
    check_in_range(test_fraction, "test_fraction", 0.0, 1.0, inclusive=False)
    rng = stream(seed, "split", n_samples, test_fraction)
    order = rng.permutation(n_samples)
    n_test = max(1, int(round(n_samples * test_fraction)))
    if n_test >= n_samples:
        raise ValueError(
            f"test_fraction={test_fraction} leaves no training samples"
        )
    return np.sort(order[n_test:]), np.sort(order[:n_test])


def kfold_indices(
    n_samples: int, k: int = 5, seed: int = 0
) -> list[tuple[np.ndarray, np.ndarray]]:
    """K shuffled folds as ``(train_idx, test_idx)`` pairs."""
    check_positive(n_samples, "n_samples")
    if not 2 <= k <= n_samples:
        raise ValueError(f"k must be in [2, {n_samples}], got {k}")
    rng = stream(seed, "kfold", n_samples, k)
    order = rng.permutation(n_samples)
    folds = np.array_split(order, k)
    out = []
    for i in range(k):
        test = np.sort(folds[i])
        train = np.sort(np.concatenate([folds[j] for j in range(k) if j != i]))
        out.append((train, test))
    return out
