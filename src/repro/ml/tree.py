"""CART regression tree (MSE criterion) with impurity feature importances.

The paper's single-DT estimator uses depth 20 (§VI-B); Figs. 9/12 read the
impurity-based importances off this implementation.

Split search comes in two engines.  ``engine="fast"`` (the default)
evaluates every threshold of every candidate feature in one 2-D numpy
pass: one stable argsort over the node's feature block, cumulative-sum
variance reduction per column, and a single argmax across the whole gain
matrix.  ``engine="reference"`` is the original per-feature Python loop,
retained as the equivalence oracle — both engines produce bitwise
identical trees (same splits, same thresholds, same importances), which
the test suite asserts on random matrices.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import stream

__all__ = ["DecisionTreeRegressor", "SPLIT_ENGINES"]

#: Split-search implementations; "fast" and "reference" grow identical trees.
SPLIT_ENGINES = ("fast", "reference")


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self) -> None:
        self.feature = -1
        self.threshold = 0.0
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.value = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor:
    """Binary regression tree grown greedily on variance reduction.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (paper: 20).
    min_samples_leaf:
        Minimum samples per leaf.
    min_samples_split:
        Minimum samples for a node to be split.
    max_features:
        Features considered per split: ``None`` (all), an int, or
        ``"sqrt"`` / ``"third"`` — the forest uses subsampling for
        de-correlation.
    seed:
        Seed for feature subsampling.
    engine:
        Split-search implementation, ``"fast"`` (vectorized across
        features) or ``"reference"`` (per-feature loop).  Both grow
        bitwise identical trees; the knob only trades speed.
    """

    def __init__(
        self,
        max_depth: int = 20,
        min_samples_leaf: int = 1,
        min_samples_split: int = 2,
        max_features: int | str | None = None,
        seed: int = 0,
        engine: str = "fast",
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("min_samples_leaf >= 1 and min_samples_split >= 2")
        if engine not in SPLIT_ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; known: {SPLIT_ENGINES}"
            )
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self.engine = engine
        self._root: _Node | None = None
        self._n_features = 0
        self.feature_importances_: np.ndarray | None = None

    # ------------------------------------------------------------------ fit

    def _n_candidate_features(self) -> int:
        if self.max_features is None:
            return self._n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self._n_features)))
        if self.max_features == "third":
            return max(1, self._n_features // 3)
        if isinstance(self.max_features, int) and self.max_features >= 1:
            return min(self.max_features, self._n_features)
        raise ValueError(f"bad max_features: {self.max_features!r}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Grow the tree on ``(n_samples, n_features)`` data."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes: X{X.shape}, y{y.shape}")
        if X.shape[0] == 0:
            raise ValueError("empty training set")
        self._n_features = X.shape[1]
        self._importance = np.zeros(self._n_features)
        self._rng = stream(self.seed, "dtree")
        self._flat = None  # invalidate the prediction cache
        if self.engine == "fast":
            # One stable sort at the root; nodes filter it down instead of
            # re-sorting.  Stable filtering of a stable order equals the
            # stable sort of the subset, so splits stay bitwise identical
            # to the reference engine.
            sort0 = np.argsort(X, axis=0, kind="stable").astype(np.int64)
        else:
            sort0 = None
        self._root = self._grow(X, y, np.arange(X.shape[0]), sort0, depth=0)
        total = self._importance.sum()
        self.feature_importances_ = (
            self._importance / total if total > 0 else self._importance.copy()
        )
        return self

    def _grow(
        self,
        X: np.ndarray,
        y: np.ndarray,
        idx: np.ndarray,
        sort: np.ndarray | None,
        depth: int,
    ) -> _Node:
        node = _Node()
        node.value = float(y[idx].mean())
        n = idx.size
        if (
            depth >= self.max_depth
            or n < self.min_samples_split
            or np.ptp(y[idx]) == 0.0
        ):
            return node

        k = self._n_candidate_features()
        if k < self._n_features:
            features = self._rng.choice(self._n_features, size=k, replace=False)
        else:
            features = np.arange(self._n_features)

        if self.engine == "fast":
            best = self._best_split_fast(X, y, idx, sort, features)
        else:
            best = self._best_split_reference(X, y, idx, features)
        if best is None:
            return node
        feat, thr, gain, left_mask = best
        node.feature = int(feat)
        node.threshold = float(thr)
        self._importance[feat] += gain
        if sort is not None:
            in_left = np.zeros(X.shape[0], dtype=bool)
            in_left[idx[left_mask]] = True
            keep = in_left[sort]  # (n, F): same column-wise sample sets
            n_left = int(left_mask.sum())
            sort_left = sort.T[keep.T].reshape(self._n_features, n_left).T
            sort_right = sort.T[~keep.T].reshape(self._n_features, n - n_left).T
        else:
            sort_left = sort_right = None
        node.left = self._grow(X, y, idx[left_mask], sort_left, depth + 1)
        node.right = self._grow(X, y, idx[~left_mask], sort_right, depth + 1)
        return node

    def _best_split_reference(
        self,
        X: np.ndarray,
        y: np.ndarray,
        idx: np.ndarray,
        features: np.ndarray,
    ) -> tuple[int, float, float, np.ndarray] | None:
        """Per-feature loop, vectorized over thresholds (the oracle)."""
        yv = y[idx]
        n = idx.size
        sum_all = yv.sum()
        sq_all = float((yv**2).sum())
        node_sse = sq_all - sum_all**2 / n

        best_gain = 1e-12
        best: tuple[int, float, float, np.ndarray] | None = None
        m = self.min_samples_leaf
        for f in features:
            xv = X[idx, f]
            order = np.argsort(xv, kind="stable")
            xs = xv[order]
            ys = yv[order]
            csum = np.cumsum(ys)
            csq = np.cumsum(ys**2)
            # Split after position i (1-based count of left samples).
            counts = np.arange(1, n)
            valid = (xs[:-1] < xs[1:]) & (counts >= m) & (n - counts >= m)
            if not valid.any():
                continue
            left_sse = csq[:-1] - csum[:-1] ** 2 / counts
            right_sum = sum_all - csum[:-1]
            right_sq = sq_all - csq[:-1]
            right_sse = right_sq - right_sum**2 / (n - counts)
            gain = node_sse - (left_sse + right_sse)
            gain[~valid] = -np.inf
            i = int(np.argmax(gain))
            if gain[i] > best_gain:
                thr = (xs[i] + xs[i + 1]) / 2.0
                best_gain = float(gain[i])
                best = (int(f), thr, best_gain, X[idx, f] <= thr)
        return best

    def _best_split_fast(
        self,
        X: np.ndarray,
        y: np.ndarray,
        idx: np.ndarray,
        sort: np.ndarray,
        features: np.ndarray,
    ) -> tuple[int, float, float, np.ndarray] | None:
        """All candidate features in one 2-D pass over presorted columns.

        ``sort`` holds the node's samples per feature column in stable
        x-sorted order (filtered down from the root sort, which equals a
        stable sort of the subset).  Column ``j`` of every intermediate
        equals the reference engine's 1-D arrays for feature
        ``features[j]`` — same values, same operation order — and the
        final first-max argmaxes reproduce the reference's tie-breaking
        (earliest threshold within a feature, earliest feature across
        equal gains), so the chosen split is bitwise identical.
        """
        yv = y[idx]
        n = idx.size
        sum_all = yv.sum()
        sq_all = float((yv**2).sum())
        node_sse = sq_all - sum_all**2 / n
        m = self.min_samples_leaf

        cols = sort[:, features]  # (n, k) global sample ids, x-sorted
        xs = X[cols, features]
        ys = y[cols]
        csum = np.cumsum(ys, axis=0)[:-1]
        csq = np.cumsum(ys**2, axis=0)[:-1]
        counts = np.arange(1, n, dtype=np.float64)[:, None]
        valid = (xs[:-1] < xs[1:]) & (counts >= m) & (n - counts >= m)
        if not valid.any():
            return None
        left_sse = csq - csum**2 / counts
        right_sum = sum_all - csum
        right_sq = sq_all - csq
        right_sse = right_sq - right_sum**2 / (n - counts)
        gain = node_sse - (left_sse + right_sse)
        gain[~valid] = -np.inf

        pos = np.argmax(gain, axis=0)  # first max per column, as np.argmax
        per_feature = gain[pos, np.arange(len(features))]
        j = int(np.argmax(per_feature))  # first max across columns
        if not per_feature[j] > 1e-12:
            return None
        i = int(pos[j])
        f = int(features[j])
        thr = (xs[i, j] + xs[i + 1, j]) / 2.0
        return (f, thr, float(per_feature[j]), X[idx, f] <= thr)

    # ------------------------------------------------------------------ predict

    def _flat_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The tree as ``(feats, thrs, lefts, rights, values)`` arrays."""
        if self._root is None:
            raise RuntimeError("tree not fitted")
        if getattr(self, "_flat", None) is None:
            self._flatten()
        return self._flat

    def _flatten(self) -> None:
        """Cache the tree as arrays for vectorized prediction.

        Iterative preorder walk: degenerate trees can be deeper than the
        Python recursion limit.
        """
        feats: list[int] = []
        thrs: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []
        values: list[float] = []

        # Stack of (node, parent_index, is_left_child); preorder so the
        # node indices match the old recursive layout.
        todo: list[tuple[_Node, int, bool]] = [(self._root, -1, False)]
        while todo:
            node, parent, is_left = todo.pop()
            idx = len(feats)
            feats.append(node.feature)
            thrs.append(node.threshold)
            lefts.append(-1)
            rights.append(-1)
            values.append(node.value)
            if parent >= 0:
                if is_left:
                    lefts[parent] = idx
                else:
                    rights[parent] = idx
            if not node.is_leaf:
                # Push right first so the left subtree is emitted first.
                todo.append((node.right, idx, False))
                todo.append((node.left, idx, True))
        self._flat = (
            np.asarray(feats, dtype=np.int32),
            np.asarray(thrs, dtype=np.float64),
            np.asarray(lefts, dtype=np.int32),
            np.asarray(rights, dtype=np.int32),
            np.asarray(values, dtype=np.float64),
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets; requires a prior :meth:`fit`.

        Prediction walks all rows level-by-level over the flattened node
        arrays, so it is vectorized across samples.
        """
        if self._root is None:
            raise RuntimeError("predict() before fit()")
        X = np.asarray(X, dtype=np.float64)
        feats, thrs, lefts, rights, values = self._flat_arrays()
        idx = np.zeros(X.shape[0], dtype=np.int32)
        active = lefts[idx] >= 0
        rows = np.arange(X.shape[0])
        while active.any():
            cur = idx[active]
            go_left = (
                X[rows[active], feats[cur]] <= thrs[cur]
            )
            idx[active] = np.where(go_left, lefts[cur], rights[cur])
            active = lefts[idx] >= 0
        return values[idx]

    def depth(self) -> int:
        """Actual depth of the grown tree.

        Iterative: a degenerate chain (one sample peeled per split) can
        exceed the Python recursion limit long before it exhausts memory.
        """
        if self._root is None:
            raise RuntimeError("depth() before fit()")
        best = 0
        todo: list[tuple[_Node, int]] = [(self._root, 0)]
        while todo:
            node, d = todo.pop()
            if node.is_leaf:
                best = max(best, d)
                continue
            todo.append((node.left, d + 1))
            todo.append((node.right, d + 1))
        return best
