"""CART regression tree (MSE criterion) with impurity feature importances.

The paper's single-DT estimator uses depth 20 (§VI-B); Figs. 9/12 read the
impurity-based importances off this implementation.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import stream

__all__ = ["DecisionTreeRegressor"]


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self) -> None:
        self.feature = -1
        self.threshold = 0.0
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.value = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor:
    """Binary regression tree grown greedily on variance reduction.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (paper: 20).
    min_samples_leaf:
        Minimum samples per leaf.
    min_samples_split:
        Minimum samples for a node to be split.
    max_features:
        Features considered per split: ``None`` (all), an int, or
        ``"sqrt"`` / ``"third"`` — the forest uses subsampling for
        de-correlation.
    seed:
        Seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 20,
        min_samples_leaf: int = 1,
        min_samples_split: int = 2,
        max_features: int | str | None = None,
        seed: int = 0,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("min_samples_leaf >= 1 and min_samples_split >= 2")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None
        self._n_features = 0
        self.feature_importances_: np.ndarray | None = None

    # ------------------------------------------------------------------ fit

    def _n_candidate_features(self) -> int:
        if self.max_features is None:
            return self._n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self._n_features)))
        if self.max_features == "third":
            return max(1, self._n_features // 3)
        if isinstance(self.max_features, int) and self.max_features >= 1:
            return min(self.max_features, self._n_features)
        raise ValueError(f"bad max_features: {self.max_features!r}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Grow the tree on ``(n_samples, n_features)`` data."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes: X{X.shape}, y{y.shape}")
        if X.shape[0] == 0:
            raise ValueError("empty training set")
        self._n_features = X.shape[1]
        self._importance = np.zeros(self._n_features)
        self._rng = stream(self.seed, "dtree")
        self._flat = None  # invalidate the prediction cache
        self._root = self._grow(X, y, np.arange(X.shape[0]), depth=0)
        total = self._importance.sum()
        self.feature_importances_ = (
            self._importance / total if total > 0 else self._importance.copy()
        )
        return self

    def _grow(
        self, X: np.ndarray, y: np.ndarray, idx: np.ndarray, depth: int
    ) -> _Node:
        node = _Node()
        node.value = float(y[idx].mean())
        n = idx.size
        if (
            depth >= self.max_depth
            or n < self.min_samples_split
            or np.ptp(y[idx]) == 0.0
        ):
            return node

        k = self._n_candidate_features()
        if k < self._n_features:
            features = self._rng.choice(self._n_features, size=k, replace=False)
        else:
            features = np.arange(self._n_features)

        best = self._best_split(X, y, idx, features)
        if best is None:
            return node
        feat, thr, gain, left_mask = best
        node.feature = int(feat)
        node.threshold = float(thr)
        self._importance[feat] += gain
        node.left = self._grow(X, y, idx[left_mask], depth + 1)
        node.right = self._grow(X, y, idx[~left_mask], depth + 1)
        return node

    def _best_split(
        self,
        X: np.ndarray,
        y: np.ndarray,
        idx: np.ndarray,
        features: np.ndarray,
    ) -> tuple[int, float, float, np.ndarray] | None:
        yv = y[idx]
        n = idx.size
        sum_all = yv.sum()
        sq_all = float((yv**2).sum())
        node_sse = sq_all - sum_all**2 / n

        best_gain = 1e-12
        best: tuple[int, float, float, np.ndarray] | None = None
        m = self.min_samples_leaf
        for f in features:
            xv = X[idx, f]
            order = np.argsort(xv, kind="stable")
            xs = xv[order]
            ys = yv[order]
            csum = np.cumsum(ys)
            csq = np.cumsum(ys**2)
            # Split after position i (1-based count of left samples).
            counts = np.arange(1, n)
            valid = (xs[:-1] < xs[1:]) & (counts >= m) & (n - counts >= m)
            if not valid.any():
                continue
            left_sse = csq[:-1] - csum[:-1] ** 2 / counts
            right_sum = sum_all - csum[:-1]
            right_sq = sq_all - csq[:-1]
            right_sse = right_sq - right_sum**2 / (n - counts)
            gain = node_sse - (left_sse + right_sse)
            gain[~valid] = -np.inf
            i = int(np.argmax(gain))
            if gain[i] > best_gain:
                thr = (xs[i] + xs[i + 1]) / 2.0
                best_gain = float(gain[i])
                best = (int(f), thr, best_gain, X[idx, f] <= thr)
        return best

    # ------------------------------------------------------------------ predict

    def _flatten(self) -> None:
        """Cache the tree as arrays for vectorized prediction."""
        feats: list[int] = []
        thrs: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []
        values: list[float] = []

        def visit(node: _Node) -> int:
            idx = len(feats)
            feats.append(node.feature)
            thrs.append(node.threshold)
            lefts.append(-1)
            rights.append(-1)
            values.append(node.value)
            if not node.is_leaf:
                lefts[idx] = visit(node.left)
                rights[idx] = visit(node.right)
            return idx

        visit(self._root)
        self._flat = (
            np.asarray(feats, dtype=np.int32),
            np.asarray(thrs, dtype=np.float64),
            np.asarray(lefts, dtype=np.int32),
            np.asarray(rights, dtype=np.int32),
            np.asarray(values, dtype=np.float64),
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets; requires a prior :meth:`fit`.

        Prediction walks all rows level-by-level over the flattened node
        arrays, so it is vectorized across samples.
        """
        if self._root is None:
            raise RuntimeError("predict() before fit()")
        X = np.asarray(X, dtype=np.float64)
        if getattr(self, "_flat", None) is None:
            self._flatten()
        feats, thrs, lefts, rights, values = self._flat
        idx = np.zeros(X.shape[0], dtype=np.int32)
        active = lefts[idx] >= 0
        rows = np.arange(X.shape[0])
        while active.any():
            cur = idx[active]
            go_left = (
                X[rows[active], feats[cur]] <= thrs[cur]
            )
            idx[active] = np.where(go_left, lefts[cur], rights[cur])
            active = lefts[idx] >= 0
        return values[idx]

    def depth(self) -> int:
        """Actual depth of the grown tree."""
        def _d(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_d(node.left), _d(node.right))

        if self._root is None:
            raise RuntimeError("depth() before fit()")
        return _d(self._root)
