"""From-scratch NumPy implementations of the paper's four estimators
(§VI-B): linear regression, a CART decision tree, a random forest, and a
one-hidden-layer MLP trained with ADAM — plus the metrics and splits the
evaluation uses (relative error, 80/20 split).

scikit-learn is deliberately not used: the models are small and fully
specified in the paper, and owning the implementation lets the tree/forest
expose the impurity-based feature importances Figs. 9/12 analyze.

Tree growth ships two split-search engines (``engine="fast"``, the
vectorized default, and ``engine="reference"``, the per-feature oracle)
that produce bitwise identical trees; the forest additionally fits its
trees over a process pool (``n_workers=N``) with seed-stable results and
batches prediction across trees (:mod:`repro.ml.ensemble`).
"""

from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.ensemble import StackedTrees, stack_trees
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import LinearRegression
from repro.ml.metrics import (
    mean_absolute_error,
    mean_relative_error,
    mean_squared_error,
    median_absolute_relative_error,
    r2_score,
)
from repro.ml.mlp import MLPRegressor
from repro.ml.split import kfold_indices, train_test_split
from repro.ml.tree import SPLIT_ENGINES, DecisionTreeRegressor

__all__ = [
    "DecisionTreeRegressor",
    "GradientBoostingRegressor",
    "LinearRegression",
    "MLPRegressor",
    "RandomForestRegressor",
    "SPLIT_ENGINES",
    "StackedTrees",
    "stack_trees",
    "kfold_indices",
    "mean_absolute_error",
    "mean_relative_error",
    "mean_squared_error",
    "median_absolute_relative_error",
    "r2_score",
    "train_test_split",
]
