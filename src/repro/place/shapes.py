"""Placed-module footprints.

A footprint records, per PBlock column, how many CLB rows the placed module
actually occupies (a *skyline*).  The stitcher uses footprints for overlap
checks, so irregular (less rectangular) footprints directly translate into
the "dead spots" the paper observes with loose PBlocks (§IV, Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.column import ColumnKind

__all__ = ["Footprint"]


@dataclass(frozen=True)
class Footprint:
    """Occupied area of a placed module, anchored at its PBlock origin.

    Attributes
    ----------
    col_kinds:
        Column-kind pattern of the PBlock (left to right); relocation is
        only legal where the device matches this pattern.
    heights:
        Occupied CLB rows per column, from the PBlock's bottom row
        (``len(heights) == len(col_kinds)``).
    """

    col_kinds: tuple[ColumnKind, ...]
    heights: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.col_kinds) != len(self.heights):
            raise ValueError(
                f"{len(self.col_kinds)} kinds vs {len(self.heights)} heights"
            )
        if not self.col_kinds:
            raise ValueError("footprint must span at least one column")
        if any(h < 0 for h in self.heights):
            raise ValueError("heights must be non-negative")

    # ------------------------------------------------------------- geometry

    @property
    def width(self) -> int:
        """Number of columns spanned."""
        return len(self.col_kinds)

    @property
    def max_height(self) -> int:
        """Tallest occupied column (CLB rows)."""
        return max(self.heights)

    @property
    def occupied_clbs(self) -> int:
        """Total occupied CLB cells."""
        return int(sum(self.heights))

    @property
    def bbox_clbs(self) -> int:
        """Bounding-box area in CLB cells."""
        return self.width * self.max_height

    @property
    def rectangularity(self) -> float:
        """Occupied / bounding box, in (0, 1]; 1.0 is a perfect rectangle.

        The paper's Fig. 3 contrast (CF 1.5 vs minimal CF) is exactly a
        rectangularity improvement.
        """
        if self.bbox_clbs == 0:
            return 1.0
        return self.occupied_clbs / self.bbox_clbs

    def heights_array(self) -> np.ndarray:
        """Heights as an int array (stitcher occupancy painting)."""
        return np.asarray(self.heights, dtype=np.int32)

    def trimmed(self) -> "Footprint":
        """Drop empty columns on both edges (keeps interior gaps)."""
        hs = self.heights
        lo = 0
        hi = len(hs)
        while lo < hi and hs[lo] == 0:
            lo += 1
        while hi > lo and hs[hi - 1] == 0:
            hi -= 1
        if lo == hi:  # fully empty: keep one column to stay well-formed
            return Footprint(self.col_kinds[:1], (0,))
        return Footprint(self.col_kinds[lo:hi], self.heights[lo:hi])
