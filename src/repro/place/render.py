"""ASCII rendering of module footprints (the Fig. 3 view).

The paper's Fig. 3 contrasts the same module placed with CF 1.5
(irregular) and the smallest feasible PBlock (near-rectangular); these
helpers draw that contrast in a terminal.
"""

from __future__ import annotations

from repro.device.column import ColumnKind
from repro.place.shapes import Footprint

__all__ = ["render_footprint", "render_side_by_side"]

_GLYPH = {
    ColumnKind.CLBLL: "#",
    ColumnKind.CLBLM: "#",
    ColumnKind.BRAM: "B",
    ColumnKind.DSP: "D",
}


def render_footprint(
    fp: Footprint, title: str = "", max_height: int = 24
) -> str:
    """Draw one footprint, bottom row last (fabric orientation).

    Occupied CLB cells print as ``#`` (``B``/``D`` in hard-block
    columns); empty bounding-box cells as ``.``.  Tall footprints are
    vertically downsampled to ``max_height`` rows.
    """
    fp = fp.trimmed()
    h = max(1, fp.max_height)
    step = max(1, -(-h // max_height))  # ceil division
    lines = []
    for top in range(h - 1, -1, -step):
        row = []
        for c, kind in enumerate(fp.col_kinds):
            # A cell prints occupied if any sampled row in its band is.
            occupied = any(
                fp.heights[c] > y for y in range(max(0, top - step + 1), top + 1)
            )
            row.append(_GLYPH.get(kind, "#") if occupied else ".")
        lines.append("".join(row))
    body = "\n".join(lines)
    header = (
        f"{title} ({fp.width}x{fp.max_height} CLBs, "
        f"rect={fp.rectangularity:.2f})\n"
        if title
        else ""
    )
    return header + body


def render_side_by_side(
    left: Footprint, right: Footprint, labels: tuple[str, str] = ("a", "b"),
    max_height: int = 24,
) -> str:
    """Render two footprints next to each other (the Fig. 3 layout)."""
    a = render_footprint(left, labels[0], max_height).splitlines()
    b = render_footprint(right, labels[1], max_height).splitlines()
    width_a = max((len(line) for line in a), default=0)
    rows = max(len(a), len(b))
    a += [""] * (rows - len(a))
    b += [""] * (rows - len(b))
    return "\n".join(f"{la.ljust(width_a)}   |   {lb}" for la, lb in zip(a, b))
