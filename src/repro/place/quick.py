"""Quick placement and the naive slice estimate (Fig. 1, left half).

RapidWright synthesizes each module, runs a fast placement and derives (a)
an estimated slice count from resource usage and (b) a shape report with
the geometric constraints (carry-chain heights, aspect ratio).  The PBlock
is then the estimate *times the correction factor*, snapped to the column
grid.

The estimate here deliberately uses fixed nominal packing constants and
ignores control-set fragmentation and congestion — those are exactly the
effects the CF must cover (paper §V), and modelling them here would make
the minimal CF trivially 1.0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.device.resources import BRAM36_PER_REGION_COLUMN, DSP48_PER_REGION_COLUMN
from repro.netlist.stats import NetlistStats
from repro.synth.packing import (
    NOMINAL_LUT_INPUTS,
    NOMINAL_SHARING,
    lut_pack_efficiency,
)

__all__ = ["ShapeReport", "quick_place"]

_LUTS_PER_SLICE = 4
_FFS_PER_SLICE = 8
_M_SITES_PER_SLICE = 4


@dataclass(frozen=True)
class ShapeReport:
    """Output of the quick placement (Fig. 1 "shape report").

    Attributes
    ----------
    est_slices:
        Naive slice estimate the CF multiplies.
    min_height_clbs:
        Tallest carry chain in slices == minimum PBlock height in CLB rows
        (paper §V-C).
    est_width_cols, est_height_clbs:
        Shape of the quick placement (CLB columns x CLB rows).
    aspect_ratio:
        ``est_width_cols / est_height_clbs``; the PBlock generator keeps
        this ratio while scaling (Fig. 1 "W/L").
    m_slice_demand:
        M-type slices needed for SRL/LUTRAM sites.
    bram36, dsp48:
        Hard-block demands.
    """

    est_slices: int
    min_height_clbs: int
    est_width_cols: int
    est_height_clbs: int
    aspect_ratio: float
    m_slice_demand: int
    bram36: int
    dsp48: int

    @property
    def shape_area_clbs(self) -> int:
        """Quick-placement bounding-box area (a "placement feature")."""
        return self.est_width_cols * self.est_height_clbs


def naive_slice_estimate(stats: NetlistStats) -> int:
    """The resource-based slice estimate (no fragmentation, no congestion)."""
    lut_slices = math.ceil(
        stats.n_lut / (_LUTS_PER_SLICE * lut_pack_efficiency(NOMINAL_LUT_INPUTS))
    )
    ff_slices = math.ceil(stats.n_ff / _FFS_PER_SLICE)  # ignores control sets
    carry_slices = stats.n_carry4
    m_slices = math.ceil(stats.n_m_lut_sites / _M_SITES_PER_SLICE)

    demands = (lut_slices, ff_slices, carry_slices)
    raw = sum(demands)
    if raw == 0:
        logic = 0.0
    else:
        dominant = max(demands)
        # Naive: a fixed nominal sharing efficiency, blind to the module's
        # actual resource balance and control sets (paper §V-B/E).
        logic = dominant + (raw - dominant) * (1.0 - NOMINAL_SHARING)
    return max(1, math.ceil(logic) + m_slices)


def quick_place(stats: NetlistStats) -> ShapeReport:
    """Run the quick placement for ``stats`` and build the shape report.

    The quick placement shape targets a square region in CLB units (each
    CLB column contributes 2 slices per row) stretched to honor the
    tallest carry chain.
    """
    est = naive_slice_estimate(stats)
    min_h = max(1, stats.max_chain_slices)

    # Shape follows the fabric's tall aspect (CLB columns are ~2.5x fewer
    # than CLB rows on the 7-series parts): height_clbs ~ 2.5 * width_cols,
    # with width_cols * 2 * height == est.  Tall-narrow PBlocks also have
    # more relocation anchors and pack better when stitched.
    height = max(min_h, math.ceil(math.sqrt(est * 2.5 / 2.0)))
    width = max(1, math.ceil(est / (2.0 * height)))

    # Hard blocks widen the shape (their columns are interleaved).
    bram_cols = 0
    if stats.n_bram > 0:
        per_col = max(1, height * BRAM36_PER_REGION_COLUMN // 50)
        bram_cols = math.ceil(stats.n_bram / per_col)
    dsp_cols = 0
    if stats.n_dsp > 0:
        per_col = max(1, height * DSP48_PER_REGION_COLUMN // 50)
        dsp_cols = math.ceil(stats.n_dsp / per_col)
    width += bram_cols + dsp_cols

    return ShapeReport(
        est_slices=est,
        min_height_clbs=min_h,
        est_width_cols=width,
        est_height_clbs=height,
        aspect_ratio=width / height,
        m_slice_demand=math.ceil(stats.n_m_lut_sites / _M_SITES_PER_SLICE),
        bram36=stats.n_bram,
        dsp48=stats.n_dsp,
    )
