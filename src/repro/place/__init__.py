"""Placement simulator.

Three pieces, mirroring the paper's Fig. 1 pipeline:

* :mod:`repro.place.quick` — the fast resource-based placement RapidWright
  runs after synthesis; produces the shape report and the naive slice
  estimate that the correction factor multiplies;
* :mod:`repro.place.packer` — the detailed intra-PBlock placer deciding
  whether a module fits a given PBlock (the ground truth behind the
  minimal feasible CF), producing the occupied-slice *footprint*;
* :mod:`repro.place.congestion` — the routability ceiling (paper §V-D).
"""

from repro.place.congestion import routable_utilization
from repro.place.packer import PackResult, pack
from repro.place.quick import ShapeReport, quick_place
from repro.place.render import render_footprint, render_side_by_side
from repro.place.shapes import Footprint

__all__ = [
    "Footprint",
    "PackResult",
    "ShapeReport",
    "pack",
    "quick_place",
    "render_footprint",
    "render_side_by_side",
    "routable_utilization",
]
