"""Routability model (paper §V-D).

High-fanout nets and dense pin counts demand more routing channels, so the
fraction of a PBlock's slices that can actually be used before routing
fails drops below 1.  The detailed packer rejects placements whose demand
exceeds this ceiling; the naive quick estimate ignores it — another gap the
correction factor absorbs.
"""

from __future__ import annotations

import math

from repro.device.resources import ResourceCaps
from repro.netlist.stats import NetlistStats

__all__ = ["routable_utilization"]

#: Ceiling for a module with trivial routing demand.
_BASE_CEILING = 0.97
#: Maximum penalty from a single very-high-fanout net.
_FANOUT_PENALTY = 0.07
#: Maximum penalty from overall pin density.
_PIN_PENALTY = 0.06
#: Pins per slice considered nominal (4 LUTs * ~4 pins + FF pins, shared).
_NOMINAL_PINS_PER_SLICE = 17.0


def routable_utilization(stats: NetlistStats, caps: ResourceCaps) -> float:
    """Max usable fraction of ``caps.slices`` for this module.

    Parameters
    ----------
    stats:
        Module statistics (fanout and pin counts).
    caps:
        Capacities of the candidate PBlock.

    Returns
    -------
    float
        A ceiling in ``[0.80, 0.97]``.
    """
    if caps.slices <= 0:
        return _BASE_CEILING
    # One hot net needs detour channels: penalty grows with log fanout,
    # saturating at fanout ~= 1000.
    fan = max(1, stats.max_fanout)
    fanout_term = _FANOUT_PENALTY * min(1.0, math.log10(fan) / 3.0)
    # Overall pin pressure relative to the PBlock size.
    density = stats.total_pins / (caps.slices * _NOMINAL_PINS_PER_SLICE)
    pin_term = _PIN_PENALTY * min(1.0, density)
    return max(0.80, _BASE_CEILING - fanout_term - pin_term)
