"""Detailed intra-PBlock placement (the feasibility ground truth).

Given a module's statistics and a candidate PBlock, decide whether place &
route would succeed inside it, how many slices the module occupies, and
what footprint (skyline) the placement leaves.  The mechanics implement
paper §V:

A. CLB-LM columns bring an implicit L slice (grid model);
B. control-set exclusivity fragments FF packing;
C. carry chains need vertically contiguous slices in one slice column;
D. high fanout lowers the routable-utilization ceiling;
E. balanced LUT/FF/carry demand degrades slice sharing.

A deterministic per-module noise term models residual placer
irregularity; it is a pure function of the module name, so the minimal
feasible CF is stable across sweeps yet not predictable from aggregate
features — bounding estimator accuracy away from zero, as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.device.resources import LUTS_PER_SLICE, LUTRAM_PER_MSLICE
from repro.netlist.stats import NetlistStats
from repro.place.congestion import routable_utilization
from repro.place.shapes import Footprint
from repro.synth.packing import (
    ff_slice_demand_fragmented,
    lut_pack_efficiency,
    sharing_efficiency,
)
from repro.utils.rng import module_noise, stream

if TYPE_CHECKING:  # import only for annotations: pblock imports place
    from repro.pblock.pblock import PBlock

__all__ = ["PackResult", "pack", "placer_noise_amplitude"]

#: Amplitude of the deterministic per-module demand noise.
_NOISE_HI = 0.07
_noise_hi_override: list[float] = []


class placer_noise_amplitude:
    """Context manager overriding the placer-noise amplitude.

    Used by the noise-sensitivity ablation to probe how much of the
    estimator's residual error is irreducible placer irregularity::

        with placer_noise_amplitude(0.0):
            records, _ = generate_dataset(200)

    Nesting is allowed; the innermost value wins.  The override is
    process-local and intended for experiments, not for flows.
    """

    def __init__(self, amplitude: float) -> None:
        if amplitude < 0:
            raise ValueError(f"amplitude must be >= 0, got {amplitude}")
        self.amplitude = amplitude

    def __enter__(self) -> "placer_noise_amplitude":
        _noise_hi_override.append(self.amplitude)
        return self

    def __exit__(self, *exc) -> None:
        _noise_hi_override.pop()


def _noise_hi() -> float:
    return _noise_hi_override[-1] if _noise_hi_override else _NOISE_HI


#: Slice waste of a fully unconstrained placement (scales with PBlock slack).
_SPREAD_WASTE = 0.45


@dataclass(frozen=True)
class PackResult:
    """Outcome of one detailed packing attempt.

    Attributes
    ----------
    feasible:
        Whether place & route succeeds in the PBlock.
    reason:
        Failure category when infeasible (``"bram"``, ``"dsp"``,
        ``"m_slices"``, ``"chain_height"``, ``"chain_packing"``,
        ``"congestion"``); empty when feasible.
    used_slices:
        Occupied slices (0 when infeasible).
    demand_slices:
        Slice demand after fragmentation/sharing (also set on congestion
        failures, for diagnostics).
    utilization:
        ``used_slices / pblock.caps.slices``.
    footprint:
        Skyline of the placement (``None`` when infeasible).
    """

    feasible: bool
    reason: str = ""
    used_slices: int = 0
    demand_slices: int = 0
    utilization: float = 0.0
    footprint: Footprint | None = field(default=None, compare=False)


def slice_demand(stats: NetlistStats) -> int:
    """Post-fragmentation slice demand of a module (PBlock-independent).

    This is the packer's demand model without the geometry and congestion
    checks; the minimal CF is roughly ``demand / naive estimate`` plus the
    geometric and routability corrections.
    """
    lut_eff = lut_pack_efficiency(stats.avg_lut_inputs if stats.n_lut else 4.0)
    lut_slices = math.ceil(stats.n_lut / (LUTS_PER_SLICE * lut_eff))
    ff_slices = ff_slice_demand_fragmented(stats.ff_per_control_set)
    carry_slices = stats.n_carry4
    m_slices = math.ceil(stats.n_m_lut_sites / LUTRAM_PER_MSLICE)

    demands = (lut_slices, ff_slices, carry_slices)
    raw = sum(demands)
    if raw == 0:
        logic = 0.0
    else:
        dominant = max(demands)
        density = dominant / raw
        cs_pressure = stats.n_control_sets / max(1, ff_slices)
        share = sharing_efficiency(density, cs_pressure)
        logic = dominant + (raw - dominant) * (1.0 - share)

    hi = _noise_hi()
    noise = module_noise(stats.name, "pack", 0.0, hi) if hi > 0 else 0.0
    total = (logic + m_slices) * (1.0 + noise)
    return max(1, math.ceil(total))


def pack(stats: NetlistStats, pblock: PBlock) -> PackResult:
    """Attempt a detailed placement of ``stats`` inside ``pblock``."""
    caps = pblock.caps

    # Hard blocks first: no amount of CF slack fixes a missing BRAM column.
    if stats.n_bram > caps.bram36:
        return PackResult(False, reason="bram")
    if stats.n_dsp > caps.dsp48:
        return PackResult(False, reason="dsp")

    m_slice_demand = math.ceil(stats.n_m_lut_sites / LUTRAM_PER_MSLICE)
    if m_slice_demand > caps.m_slices:
        return PackResult(False, reason="m_slices")

    # Carry-chain geometry (paper §V-C): first-fit-decreasing into the
    # PBlock's slice columns.
    height = pblock.height  # slices per slice column
    chains = sorted(stats.carry_chain_slices, reverse=True)
    if chains and chains[0] > height:
        return PackResult(False, reason="chain_height")
    n_slice_cols = pblock.n_slice_cols
    if chains:
        col_free = [height] * n_slice_cols
        for chain in chains:
            for i, free in enumerate(col_free):
                if free >= chain:
                    col_free[i] = free - chain
                    break
            else:
                return PackResult(False, reason="chain_packing", demand_slices=sum(chains))

    demand = slice_demand(stats)

    ceiling = routable_utilization(stats, caps)
    # A handful of slices routes trivially; the utilization ceiling only
    # makes sense once the region is large enough to congest.
    limit = caps.slices if caps.slices <= 8 else caps.slices * ceiling
    if demand > limit:
        return PackResult(
            False,
            reason="congestion",
            demand_slices=demand,
            utilization=demand / caps.slices if caps.slices else 0.0,
        )

    # Loose PBlocks waste slices: an unconstrained placer spreads logic
    # instead of packing it (Table I: the same module uses more slices at
    # CF 1.5 than at CF 1.0).  No waste above ~85% utilization — a tightly
    # constrained placement packs at least as well as a flat flow.
    u_raw = demand / caps.slices if caps.slices else 1.0
    spread = 1.0 + _SPREAD_WASTE * max(0.0, 1.0 - u_raw - 0.15)
    used = min(math.ceil(demand * spread), math.floor(caps.slices * ceiling))
    used = max(used, demand)

    footprint = _build_footprint(stats, pblock, used)
    return PackResult(
        True,
        used_slices=used,
        demand_slices=demand,
        utilization=used / caps.slices if caps.slices else 0.0,
        footprint=footprint,
    )


def _build_footprint(stats: NetlistStats, pblock: PBlock, demand: int) -> Footprint:
    """Distribute ``demand`` slices over the PBlock's columns as a skyline.

    Real placers spread logic when a region is loosely constrained; we
    model the per-column fill level as ``u^0.65`` of the height (u = slice
    utilization) with deterministic per-column jitter, then trim to the
    exact demand.  Tight PBlocks (u -> 1) therefore produce near-perfect
    rectangles, loose ones the irregular shapes of Fig. 3.
    """
    kinds = pblock.kinds
    height = pblock.height
    n_clb_cols = pblock.n_clb_cols
    cap = n_clb_cols * 2 * height
    u = min(1.0, demand / cap) if cap else 1.0

    need_clbs = min(math.ceil(demand / 2), n_clb_cols * height)
    rng = stream(0, "footprint", stats.name, pblock.width, pblock.height)

    # Start from the flattest possible profile (a rectangle plus one
    # partial stair), then let the placer wander in proportion to its
    # slack: skyline raggedness shrinks sharply as the PBlock tightens
    # (paper §IV: minimal-CF placements become "more rectangular").
    base, rem = divmod(need_clbs, n_clb_cols)
    targets = [base + (1 if c < rem else 0) for c in range(n_clb_cols)]
    amp = 0.02 + 0.55 * (1.0 - u) ** 1.5
    jitter = rng.uniform(1.0 - amp, 1.0 + amp, size=n_clb_cols)
    targets = [min(height, max(0, round(t * j))) for t, j in zip(targets, jitter)]

    # Restore the exact total, adjusting from the right so the bulk of
    # the profile stays flat.
    total = sum(targets)
    c = n_clb_cols - 1
    guard = 4 * n_clb_cols
    while total != need_clbs and guard > 0:
        guard -= 1
        if total < need_clbs and targets[c] < height:
            targets[c] += 1
            total += 1
        elif total > need_clbs and targets[c] > 0:
            targets[c] -= 1
            total -= 1
        c = c - 1 if c > 0 else n_clb_cols - 1

    heights: list[int] = []
    clb_i = 0
    for kind in kinds:
        if kind.is_clb:
            heights.append(targets[clb_i])
            clb_i += 1
        elif kind.value == "BRAM" and stats.n_bram > 0:
            heights.append(min(height, stats.n_bram * 5))
        elif kind.value == "DSP" and stats.n_dsp > 0:
            heights.append(min(height, stats.n_dsp * 5))
        else:
            heights.append(0)
    return Footprint(col_kinds=kinds, heights=tuple(heights))
