"""Nets.

For placement and feature extraction only the *fanout distribution* of a
module matters (paper §V-D: high fanin/fanout means more routing effort),
so nets store a driver name and a load count rather than full pin lists.
This keeps netlists with thousands of cells cheap while preserving every
quantity the paper's models consume (max fanout, pin counts).
"""

from __future__ import annotations

__all__ = ["Net"]


class Net:
    """One net: a driver and ``fanout`` loads.

    Attributes
    ----------
    name:
        Net name, unique within the netlist.
    fanout:
        Number of load pins (>= 0; 0 models a dangling output that
        ``opt_design`` would strip).
    is_control:
        True for clock/reset/enable nets; these ride dedicated routing and
        are excluded from congestion estimates but counted for control
        sets.
    """

    __slots__ = ("name", "fanout", "is_control")

    def __init__(self, name: str, fanout: int, is_control: bool = False) -> None:
        if fanout < 0:
            raise ValueError(f"net {name}: fanout must be >= 0, got {fanout}")
        self.name = name
        self.fanout = fanout
        self.is_control = is_control

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Net({self.name!r}, fanout={self.fanout})"
