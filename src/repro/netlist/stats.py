"""Aggregate netlist statistics.

:class:`NetlistStats` is the single summary consumed by the quick placer,
the PBlock packer, the timing model and feature extraction.  It is computed
once per netlist and cached on the netlist object.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.netlist.cells import CellKind
from repro.netlist.netlist import Netlist

__all__ = ["NetlistStats", "compute_stats"]

_CARRY_BITS = 4
_FFS_PER_SLICE = 8


@dataclass(frozen=True)
class NetlistStats:
    """Aggregates of one module netlist.

    Counting conventions match the paper: ``n_carry4`` is the number of
    carry *slices* (CARRY4 segments, i.e. "carry cells"); ``carry_chain_slices``
    lists per-chain slice lengths for the geometry check.
    """

    name: str
    n_lut: int
    n_ff: int
    n_srl: int
    n_lutram: int
    n_bram: int
    n_dsp: int
    n_carry4: int
    carry_chain_slices: tuple[int, ...]
    n_control_sets: int
    ff_per_control_set: tuple[int, ...]
    max_fanout: int
    mean_fanout: float
    total_pins: int
    avg_lut_inputs: float
    logic_depth: int
    n_cells: int
    n_nets: int

    # ------------------------------------------------------------- derived

    @property
    def n_logic_luts(self) -> int:
        """LUT sites used for logic (excluding SRL/LUTRAM sites)."""
        return self.n_lut

    @property
    def n_m_lut_sites(self) -> int:
        """LUT sites that must be in M slices."""
        return self.n_srl + self.n_lutram

    @property
    def ff_slice_demand(self) -> int:
        """FF slice demand under control-set exclusivity (paper §V-B)."""
        return sum(math.ceil(n / _FFS_PER_SLICE) for n in self.ff_per_control_set)

    @property
    def max_chain_slices(self) -> int:
        """Tallest carry chain, in slices (0 when there are no chains)."""
        return max(self.carry_chain_slices, default=0)

    @property
    def total_sites(self) -> int:
        """All primitive sites; used to normalize relative features."""
        return (
            self.n_lut
            + self.n_ff
            + self.n_srl
            + self.n_lutram
            + self.n_carry4
            + self.n_bram
            + self.n_dsp
        )

    def is_trivial(self) -> bool:
        """True for one-or-two-tile modules the paper excludes from the
        estimator study (§VIII keeps 63 of cnvW1A1's 74 modules).

        A couple of tiles hold ~8 slices (~64 primitive sites); any module
        under that needs no estimator — its PBlock is quantization-driven.
        """
        if self.n_bram + self.n_dsp > 0:
            return False
        return (
            self.n_lut + self.n_ff + self.n_srl + self.n_lutram + self.n_carry4
            <= 64
        )


def compute_stats(netlist: Netlist) -> NetlistStats:
    """Compute (and cache) the aggregate statistics of ``netlist``."""
    cached = getattr(netlist, "_stats", None)
    if cached is not None:
        return cached

    counts = {kind: 0 for kind in CellKind}
    ff_by_cs: dict[int, int] = {}
    lut_inputs_sum = 0
    cs_used: set[int] = set()
    for cell in netlist.cells:
        counts[cell.kind] += 1
        if cell.kind is CellKind.LUT:
            lut_inputs_sum += cell.inputs
        if cell.kind is CellKind.FF:
            ff_by_cs[cell.control_set] = ff_by_cs.get(cell.control_set, 0) + 1
        if cell.control_set >= 0:
            cs_used.add(cell.control_set)

    # Control nets (clock/reset/enable) ride dedicated routing, so only
    # signal nets count toward the fanout features (paper §V-D).
    fanouts = [n.fanout for n in netlist.nets if not n.is_control]
    max_fanout = max(fanouts, default=0)
    mean_fanout = (sum(fanouts) / len(fanouts)) if fanouts else 0.0
    total_pins = sum(fanouts) + len(fanouts)  # loads + drivers (signal nets)

    chain_slices = tuple(
        math.ceil(bits / _CARRY_BITS) for bits in netlist.carry_chains
    )
    n_lut = counts[CellKind.LUT]

    stats = NetlistStats(
        name=netlist.name,
        n_lut=n_lut,
        n_ff=counts[CellKind.FF],
        n_srl=counts[CellKind.SRL],
        n_lutram=counts[CellKind.LUTRAM],
        n_bram=counts[CellKind.BRAM36],
        n_dsp=counts[CellKind.DSP48],
        n_carry4=counts[CellKind.CARRY4],
        carry_chain_slices=chain_slices,
        n_control_sets=len(cs_used),
        ff_per_control_set=tuple(sorted(ff_by_cs.values(), reverse=True)),
        max_fanout=max_fanout,
        mean_fanout=mean_fanout,
        total_pins=total_pins,
        avg_lut_inputs=(lut_inputs_sum / n_lut) if n_lut else 0.0,
        logic_depth=netlist.logic_depth,
        n_cells=netlist.n_cells,
        n_nets=len(netlist.nets),
    )
    netlist._stats = stats
    return stats
