"""Flip-flop control sets.

A control set is the (clock, reset, enable) signal triple steering a
register (paper §V-B, after UG949).  Registers of different control sets
cannot share a slice, so many small control sets fragment FF packing —
one of the main drivers of the minimal feasible correction factor.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ControlSet"]


@dataclass(frozen=True)
class ControlSet:
    """One (clock, reset, enable) group.

    Attributes
    ----------
    clock, reset, enable:
        Signal names; ``""`` means the pin is unused (e.g. no enable).
    """

    clock: str
    reset: str = ""
    enable: str = ""

    def key(self) -> tuple[str, str, str]:
        """Hashable identity used to merge equal control sets."""
        return (self.clock, self.reset, self.enable)

    @property
    def has_reset(self) -> bool:
        """True if the set uses a set/reset signal."""
        return bool(self.reset)

    @property
    def has_enable(self) -> bool:
        """True if the set uses a clock-enable signal."""
        return bool(self.enable)
