"""Cell primitives of the technology-mapped netlist."""

from __future__ import annotations

import enum

__all__ = ["CellKind", "Cell"]


class CellKind(enum.Enum):
    """Primitive kinds emitted by the synthesis simulator."""

    LUT = "LUT"          # combinational 6-input LUT
    FF = "FF"            # flip-flop (belongs to a control set)
    CARRY4 = "CARRY4"    # one 4-bit carry segment (part of a chain)
    SRL = "SRL"          # shift register in an M-slice LUT site
    LUTRAM = "LUTRAM"    # distributed RAM in an M-slice LUT site
    BRAM36 = "BRAM36"    # 36-kbit block RAM
    DSP48 = "DSP48"      # DSP slice

    @property
    def needs_m_slice(self) -> bool:
        """True for cells that only map to M-type slices (paper §V-A)."""
        return self in (CellKind.SRL, CellKind.LUTRAM)


class Cell:
    """One netlist cell.

    Attributes
    ----------
    name:
        Hierarchical instance name (unique within the netlist).
    kind:
        The primitive kind.
    inputs:
        Number of used input pins (LUT functional width, FF data+control,
        etc.); drives pin-density and packing-efficiency models.
    control_set:
        Index into the netlist's control-set table for FFs/SRLs/LUTRAMs,
        ``-1`` for cells without one.
    chain:
        Carry-chain id for ``CARRY4`` cells, ``-1`` otherwise.
    """

    __slots__ = ("name", "kind", "inputs", "control_set", "chain")

    def __init__(
        self,
        name: str,
        kind: CellKind,
        inputs: int = 1,
        control_set: int = -1,
        chain: int = -1,
    ) -> None:
        if inputs < 0:
            raise ValueError(f"cell {name}: inputs must be >= 0, got {inputs}")
        self.name = name
        self.kind = kind
        self.inputs = inputs
        self.control_set = control_set
        self.chain = chain

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Cell({self.name!r}, {self.kind.value}, inputs={self.inputs})"
