"""Technology-mapped netlist model.

A :class:`~repro.netlist.netlist.Netlist` is what the synthesis simulator
produces for a module and what the placer consumes.  It holds cells (LUTs,
FFs, CARRY4 chains, SRLs, LUTRAMs, BRAMs, DSPs), nets with fanout, and
flip-flop *control sets* (clock/reset/enable groups, paper §V-B).
Aggregate statistics used by placement and feature extraction live in
:class:`~repro.netlist.stats.NetlistStats` and are computed once per
netlist.
"""

from repro.netlist.cells import Cell, CellKind
from repro.netlist.control_sets import ControlSet
from repro.netlist.netlist import Netlist, NetlistBuilder
from repro.netlist.nets import Net
from repro.netlist.stats import NetlistStats, compute_stats

__all__ = [
    "Cell",
    "CellKind",
    "ControlSet",
    "Net",
    "Netlist",
    "NetlistBuilder",
    "NetlistStats",
    "compute_stats",
]
