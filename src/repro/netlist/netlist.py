"""Netlist container and builder.

The builder is the only way the synthesis simulator constructs netlists; it
keeps naming unique, merges duplicate control sets and assigns carry-chain
ids, so every :class:`Netlist` is well formed by construction.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.netlist.cells import Cell, CellKind
from repro.netlist.control_sets import ControlSet
from repro.netlist.nets import Net
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["Netlist", "NetlistBuilder"]

_CARRY_BITS = 4


class Netlist:
    """An immutable technology-mapped module netlist.

    Attributes
    ----------
    name:
        Module name (unique within a block design).
    cells, nets:
        Primitive cells and nets.
    control_sets:
        De-duplicated control-set table; FF cells reference entries by
        index.
    carry_chains:
        Bit width of each carry chain (a chain of ``b`` bits occupies
        ``ceil(b / 4)`` vertically contiguous slices).
    logic_depth:
        Estimated combinational LUT levels on the longest path (set by the
        synthesis simulator; feeds the timing model).
    """

    def __init__(
        self,
        name: str,
        cells: Sequence[Cell],
        nets: Sequence[Net],
        control_sets: Sequence[ControlSet],
        carry_chains: Sequence[int],
        logic_depth: int,
    ) -> None:
        check_non_negative(logic_depth, "logic_depth")
        self.name = name
        self.cells = tuple(cells)
        self.nets = tuple(nets)
        self.control_sets = tuple(control_sets)
        self.carry_chains = tuple(carry_chains)
        self.logic_depth = logic_depth
        self._stats = None  # lazily filled by repro.netlist.stats

    @property
    def n_cells(self) -> int:
        """Number of primitive cells."""
        return len(self.cells)

    def count(self, kind: CellKind) -> int:
        """Number of cells of one kind."""
        return sum(1 for c in self.cells if c.kind is kind)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Netlist({self.name!r}, {self.n_cells} cells)"


class NetlistBuilder:
    """Incrementally assembles a :class:`Netlist`.

    All ``add_*`` methods create both the cell(s) and the cell's output
    net(s).  Fanouts default to 1 and can be overridden to model broadcast
    signals.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._cells: list[Cell] = []
        self._nets: list[Net] = []
        self._control_sets: list[ControlSet] = []
        self._cs_index: dict[tuple[str, str, str], int] = {}
        self._carry_chains: list[int] = []
        self._depth = 0
        self._uid = 0

    # ------------------------------------------------------------------ naming

    def _next(self, prefix: str) -> str:
        self._uid += 1
        return f"{self.name}/{prefix}_{self._uid}"

    # ------------------------------------------------------------------ control

    def control_set(self, clock: str, reset: str = "", enable: str = "") -> int:
        """Intern a control set; returns its index (merging duplicates)."""
        cs = ControlSet(clock=clock, reset=reset, enable=enable)
        idx = self._cs_index.get(cs.key())
        if idx is None:
            idx = len(self._control_sets)
            self._control_sets.append(cs)
            self._cs_index[cs.key()] = idx
        return idx

    # ------------------------------------------------------------------ cells

    def add_lut(self, inputs: int = 4, fanout: int = 1) -> None:
        """Add one LUT and its output net."""
        if not 1 <= inputs <= 6:
            raise ValueError(f"LUT inputs must be 1..6, got {inputs}")
        name = self._next("lut")
        self._cells.append(Cell(name, CellKind.LUT, inputs=inputs))
        self._nets.append(Net(name + "_o", fanout=fanout))

    def add_luts(self, n: int, inputs: int = 4, fanout: int = 1) -> None:
        """Add ``n`` identical LUTs."""
        check_non_negative(n, "n")
        for _ in range(n):
            self.add_lut(inputs=inputs, fanout=fanout)

    def add_ff(self, cs_index: int, fanout: int = 1) -> None:
        """Add one flip-flop in control set ``cs_index``."""
        if not 0 <= cs_index < len(self._control_sets):
            raise IndexError(f"control set {cs_index} not interned")
        name = self._next("ff")
        self._cells.append(Cell(name, CellKind.FF, inputs=2, control_set=cs_index))
        self._nets.append(Net(name + "_q", fanout=fanout))

    def add_ffs(self, n: int, cs_index: int, fanout: int = 1) -> None:
        """Add ``n`` flip-flops sharing one control set."""
        check_non_negative(n, "n")
        for _ in range(n):
            self.add_ff(cs_index, fanout=fanout)

    def add_carry_chain(self, bits: int, fanout: int = 1) -> int:
        """Add a carry chain of ``bits`` bits; returns the chain id.

        Emits one CARRY4 cell per started 4-bit segment, all tagged with
        the chain id so the placer can enforce vertical contiguity.
        """
        check_positive(bits, "bits")
        chain_id = len(self._carry_chains)
        self._carry_chains.append(bits)
        for _ in range(math.ceil(bits / _CARRY_BITS)):
            name = self._next("carry")
            self._cells.append(Cell(name, CellKind.CARRY4, inputs=8, chain=chain_id))
        self._nets.append(Net(self._next("carry_o") + "_o", fanout=fanout))
        return chain_id

    def add_srl(self, cs_index: int, depth: int = 16, fanout: int = 1) -> None:
        """Add one shift-register LUT (M-slice site)."""
        if not 1 <= depth <= 32:
            raise ValueError(f"SRL depth must be 1..32, got {depth}")
        name = self._next("srl")
        self._cells.append(Cell(name, CellKind.SRL, inputs=2, control_set=cs_index))
        self._nets.append(Net(name + "_q", fanout=fanout))

    def add_srls(self, n: int, cs_index: int, depth: int = 16, fanout: int = 1) -> None:
        """Add ``n`` SRLs sharing one control set."""
        check_non_negative(n, "n")
        for _ in range(n):
            self.add_srl(cs_index, depth=depth, fanout=fanout)

    def add_lutram(self, cs_index: int, fanout: int = 1) -> None:
        """Add one distributed-RAM LUT (M-slice site)."""
        name = self._next("lram")
        self._cells.append(Cell(name, CellKind.LUTRAM, inputs=3, control_set=cs_index))
        self._nets.append(Net(name + "_o", fanout=fanout))

    def add_lutrams(self, n: int, cs_index: int, fanout: int = 1) -> None:
        """Add ``n`` LUTRAMs sharing one control set."""
        check_non_negative(n, "n")
        for _ in range(n):
            self.add_lutram(cs_index, fanout=fanout)

    def add_bram(self, n: int = 1, fanout: int = 2) -> None:
        """Add ``n`` BRAM36 instances."""
        check_non_negative(n, "n")
        for _ in range(n):
            name = self._next("bram")
            self._cells.append(Cell(name, CellKind.BRAM36, inputs=30))
            self._nets.append(Net(name + "_do", fanout=fanout))

    def add_dsp(self, n: int = 1, fanout: int = 1) -> None:
        """Add ``n`` DSP48 instances."""
        check_non_negative(n, "n")
        for _ in range(n):
            name = self._next("dsp")
            self._cells.append(Cell(name, CellKind.DSP48, inputs=48))
            self._nets.append(Net(name + "_p", fanout=fanout))

    def add_broadcast_net(self, fanout: int, is_control: bool = False) -> None:
        """Add a net without a cell (module input / global broadcast)."""
        check_non_negative(fanout, "fanout")
        self._nets.append(Net(self._next("net"), fanout=fanout, is_control=is_control))

    # ------------------------------------------------------------------ meta

    def bump_depth(self, levels: int) -> None:
        """Extend the longest combinational path by ``levels`` LUT levels."""
        check_non_negative(levels, "levels")
        self._depth += levels

    def set_min_depth(self, levels: int) -> None:
        """Ensure the depth estimate is at least ``levels``."""
        self._depth = max(self._depth, levels)

    def build(self) -> Netlist:
        """Finalize and return the netlist."""
        return Netlist(
            name=self.name,
            cells=self._cells,
            nets=self._nets,
            control_sets=self._control_sets,
            carry_chains=self._carry_chains,
            logic_depth=self._depth,
        )
