"""Routing-delay and longest-path model.

Reproduces the paper's Table I observation: tighter PBlocks use fewer
slices but worsen timing, because higher utilization forces routing
detours.  The model combines logic depth, congestion-dependent net delay,
carry propagation and fanout/clock-region penalties.  At the design
level, :func:`congestion_map` and :func:`block_critical_path` score a
stitched placement with the same channel/delay model the
congestion/timing-aware move kernels optimize in the loop.
"""

from repro.route.congestion_map import (
    CHANNEL_CAPACITY,
    CongestionMap,
    congestion_map,
)
from repro.route.timing import (
    BlockTimingReport,
    TimingReport,
    block_critical_path,
    longest_path,
)

__all__ = [
    "CHANNEL_CAPACITY",
    "BlockTimingReport",
    "CongestionMap",
    "TimingReport",
    "block_critical_path",
    "congestion_map",
    "longest_path",
]
