"""Routing-delay and longest-path model.

Reproduces the paper's Table I observation: tighter PBlocks use fewer
slices but worsen timing, because higher utilization forces routing
detours.  The model combines logic depth, congestion-dependent net delay,
carry propagation and fanout/clock-region penalties.
"""

from repro.route.congestion_map import CongestionMap, congestion_map
from repro.route.timing import TimingReport, longest_path

__all__ = ["CongestionMap", "TimingReport", "congestion_map", "longest_path"]
