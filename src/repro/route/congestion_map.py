"""Inter-block routing-congestion map of a stitched placement.

Decomposes every inter-block bus into horizontal and vertical demand over
the fabric columns/rows it crosses (HPWL routing model).  Dense, compact
placements shorten the buses and lower peak channel demand — the routing
face of the paper's §VIII cost improvement.

A bus charges exactly the channels its bounding box *crosses*: channel
``c`` sits between integer coordinates ``c`` and ``c + 1``, and a net
spanning ``[x0, x1]`` crosses the integer boundaries strictly inside
``(x0, x1)`` (boundary ``k`` belongs to channel ``k - 1``).  This is the
same :func:`~repro.place_kernel.route_cost.channel_window` model the
congestion-aware move kernels maintain incrementally, so a placement
optimized under the in-loop congestion term scores identically here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.grid import DeviceGrid
from repro.flow.blockdesign import BlockDesign
from repro.place.shapes import Footprint
from repro.place_kernel.result import StitchResult
from repro.place_kernel.route_cost import CHANNEL_CAPACITY

__all__ = ["CHANNEL_CAPACITY", "CongestionMap", "congestion_map"]


@dataclass(frozen=True)
class CongestionMap:
    """Routing demand over fabric channels.

    Attributes
    ----------
    column_demand:
        Wires crossing each vertical channel (between columns x and x+1).
    row_demand:
        Wires crossing each horizontal channel.
    n_routed_edges:
        Edges with both endpoints placed (and both modules footprinted).
    n_unrouted_edges:
        Edges skipped because an endpoint is unplaced or its module has
        no footprint (subset flows hand the stitcher partial footprint
        maps); these contribute no demand.
    """

    column_demand: np.ndarray
    row_demand: np.ndarray
    n_routed_edges: int
    n_unrouted_edges: int = 0

    @property
    def peak_column_demand(self) -> int:
        """Hottest vertical channel."""
        return int(self.column_demand.max()) if self.column_demand.size else 0

    @property
    def mean_column_demand(self) -> float:
        """Average vertical-channel load."""
        return float(self.column_demand.mean()) if self.column_demand.size else 0.0

    @property
    def overflowed_channels(self) -> int:
        """Channels beyond :data:`CHANNEL_CAPACITY`."""
        return int(np.sum(self.column_demand > CHANNEL_CAPACITY)) + int(
            np.sum(self.row_demand > CHANNEL_CAPACITY)
        )

    @property
    def total_overflow(self) -> int:
        """Total demand beyond capacity, summed over all channels.

        The quantity the kernels' congestion cost term weights:
        ``sum(max(0, demand - capacity))`` over vertical and horizontal
        channels.
        """
        over = np.maximum(self.column_demand - CHANNEL_CAPACITY, 0).sum()
        over += np.maximum(self.row_demand - CHANNEL_CAPACITY, 0).sum()
        return int(over)

    def render(self, width: int = 60) -> str:
        """One-line bar chart of the vertical-channel profile."""
        if self.column_demand.size == 0:
            return "<empty map>"
        peak = max(1, self.peak_column_demand)
        cols = np.array_split(self.column_demand, min(width, self.column_demand.size))
        glyphs = " .:-=+*#%@"
        line = "".join(
            glyphs[min(9, int(9 * chunk.max() / peak))] for chunk in cols
        )
        return f"[{line}] peak={self.peak_column_demand} wires"


def congestion_map(
    design: BlockDesign,
    footprints: dict[str, Footprint],
    stitch: StitchResult,
    grid: DeviceGrid,
) -> CongestionMap:
    """Build the demand map for a stitched placement.

    Instances whose module has no footprint (partial footprint maps from
    subset flows) are treated as unplaced: their edges are counted in
    ``n_unrouted_edges`` instead of raising.
    """
    col_demand = np.zeros(max(0, grid.n_cols - 1), dtype=np.int64)
    row_demand = np.zeros(max(0, grid.height_clbs - 1), dtype=np.int64)

    module_of = {i.name: i.module for i in design.instances}
    centers: dict[str, tuple[float, float]] = {}
    for name, pos in stitch.placements.items():
        if pos is None:
            continue
        fp = footprints.get(module_of[name])
        if fp is None:
            continue
        fp = fp.trimmed()
        centers[name] = (pos[0] + fp.width / 2.0, pos[1] + fp.max_height / 2.0)

    # Gather routable edges into flat arrays, then range-add each edge's
    # channel window with a difference array + cumsum (vectorized over
    # edges; no per-edge Python slice assignments).
    ax, ay, bx, by, w = [], [], [], [], []
    routed = unrouted = 0
    for e in design.edges:
        a = centers.get(e.src)
        b = centers.get(e.dst)
        if a is None or b is None:
            unrouted += 1
            continue
        routed += 1
        ax.append(a[0])
        ay.append(a[1])
        bx.append(b[0])
        by.append(b[1])
        w.append(e.width)

    if routed:
        wa = np.asarray(w, dtype=np.int64)
        for lo_f, hi_f, demand in (
            (np.minimum(ax, bx), np.maximum(ax, bx), col_demand),
            (np.minimum(ay, by), np.maximum(ay, by), row_demand),
        ):
            if not demand.size:
                continue
            # channel_window(lo, hi), vectorized and clipped to the grid.
            first = np.clip(np.floor(lo_f).astype(np.int64), 0, demand.size)
            last = np.clip(
                np.ceil(hi_f).astype(np.int64) - 2, -1, demand.size - 1
            )
            sel = first <= last
            diff = np.zeros(demand.size + 1, dtype=np.int64)
            np.add.at(diff, first[sel], wa[sel])
            np.add.at(diff, last[sel] + 1, -wa[sel])
            demand += np.cumsum(diff[:-1])

    return CongestionMap(
        column_demand=col_demand,
        row_demand=row_demand,
        n_routed_edges=routed,
        n_unrouted_edges=unrouted,
    )
