"""Inter-block routing-congestion map of a stitched placement.

Decomposes every inter-block bus into horizontal and vertical demand over
the fabric columns/rows it crosses (HPWL routing model).  Dense, compact
placements shorten the buses and lower peak channel demand — the routing
face of the paper's §VIII cost improvement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.grid import DeviceGrid
from repro.flow.blockdesign import BlockDesign
from repro.flow.stitcher import StitchResult
from repro.place.shapes import Footprint

__all__ = ["CongestionMap", "congestion_map"]

#: Wires one inter-column channel can carry in this model.
CHANNEL_CAPACITY = 160


@dataclass(frozen=True)
class CongestionMap:
    """Routing demand over fabric channels.

    Attributes
    ----------
    column_demand:
        Wires crossing each vertical channel (between columns x and x+1).
    row_demand:
        Wires crossing each horizontal channel.
    n_routed_edges:
        Edges with both endpoints placed.
    """

    column_demand: np.ndarray
    row_demand: np.ndarray
    n_routed_edges: int

    @property
    def peak_column_demand(self) -> int:
        """Hottest vertical channel."""
        return int(self.column_demand.max()) if self.column_demand.size else 0

    @property
    def mean_column_demand(self) -> float:
        """Average vertical-channel load."""
        return float(self.column_demand.mean()) if self.column_demand.size else 0.0

    @property
    def overflowed_channels(self) -> int:
        """Channels beyond :data:`CHANNEL_CAPACITY`."""
        return int(np.sum(self.column_demand > CHANNEL_CAPACITY)) + int(
            np.sum(self.row_demand > CHANNEL_CAPACITY)
        )

    def render(self, width: int = 60) -> str:
        """One-line bar chart of the vertical-channel profile."""
        if self.column_demand.size == 0:
            return "<empty map>"
        peak = max(1, self.peak_column_demand)
        cols = np.array_split(self.column_demand, min(width, self.column_demand.size))
        glyphs = " .:-=+*#%@"
        line = "".join(
            glyphs[min(9, int(9 * chunk.max() / peak))] for chunk in cols
        )
        return f"[{line}] peak={self.peak_column_demand} wires"


def congestion_map(
    design: BlockDesign,
    footprints: dict[str, Footprint],
    stitch: StitchResult,
    grid: DeviceGrid,
) -> CongestionMap:
    """Build the demand map for a stitched placement."""
    col_demand = np.zeros(max(0, grid.n_cols - 1), dtype=np.int64)
    row_demand = np.zeros(max(0, grid.height_clbs - 1), dtype=np.int64)

    module_of = {i.name: i.module for i in design.instances}
    centers: dict[str, tuple[float, float]] = {}
    for name, pos in stitch.placements.items():
        if pos is None:
            continue
        fp = footprints[module_of[name]].trimmed()
        centers[name] = (pos[0] + fp.width / 2.0, pos[1] + fp.max_height / 2.0)

    routed = 0
    for e in design.edges:
        a = centers.get(e.src)
        b = centers.get(e.dst)
        if a is None or b is None:
            continue
        routed += 1
        x0, x1 = sorted((a[0], b[0]))
        y0, y1 = sorted((a[1], b[1]))
        lo, hi = int(np.floor(x0)), int(np.ceil(x1)) - 1
        if hi >= lo and col_demand.size:
            col_demand[max(0, lo) : min(col_demand.size, hi + 1)] += e.width
        lo, hi = int(np.floor(y0)), int(np.ceil(y1)) - 1
        if hi >= lo and row_demand.size:
            row_demand[max(0, lo) : min(row_demand.size, hi + 1)] += e.width

    return CongestionMap(
        column_demand=col_demand, row_demand=row_demand, n_routed_edges=routed
    )
