"""Longest-path estimation after intra-PBlock routing.

Delay model (7-series-flavoured constants):

* each LUT level costs a logic delay plus one net hop;
* net hops slow down super-linearly with slice utilization — the packer's
  congestion ceiling rejects unroutable placements, and this model makes
  the *routable but tight* region slower (Table I: CF 1.0 vs 1.5);
* the longest carry chain adds its propagation time;
* high-fanout nets add a distribution penalty;
* PBlocks spanning a clock-region boundary pay skew (paper §IV: compact
  PBlocks avoid clock distribution columns).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.netlist.stats import NetlistStats
from repro.place.packer import PackResult
from repro.pblock.pblock import PBlock
from repro.utils.rng import module_noise

__all__ = ["TimingReport", "longest_path"]

_T_LUT = 0.124  # ns, LUT6 logic delay
_T_NET = 0.45  # ns, lightly-loaded net hop
_T_CARRY_PER_SLICE = 0.043  # ns per CARRY4 segment
_T_FANOUT = 0.35  # ns scale of the fanout penalty
_T_REGION_CROSS = 0.30  # ns clock-skew penalty
_CONGESTION_GAIN = 1.9  # net-delay inflation at full utilization


@dataclass(frozen=True)
class TimingReport:
    """Longest-path breakdown for one placed module (all values ns)."""

    logic_ns: float
    net_ns: float
    carry_ns: float
    fanout_ns: float
    skew_ns: float

    @property
    def total_ns(self) -> float:
        """The longest path."""
        return self.logic_ns + self.net_ns + self.carry_ns + self.fanout_ns + self.skew_ns


def longest_path(
    stats: NetlistStats, result: PackResult, pblock: PBlock
) -> TimingReport:
    """Estimate the longest path of a feasible placement.

    Raises
    ------
    ValueError
        If ``result`` is infeasible (there is no routed design to time).
    """
    if not result.feasible:
        raise ValueError(f"{stats.name}: cannot time an infeasible placement")

    levels = max(1, stats.logic_depth)
    util = result.utilization
    # Net delay grows quadratically once utilization passes ~50%.
    congestion = 1.0 + _CONGESTION_GAIN * max(0.0, util - 0.5) ** 2
    # Wires also lengthen with the physical extent of the region.
    span = math.sqrt(max(1, pblock.area_clbs))
    spread = 1.0 + 0.012 * span
    jitter = 1.0 + module_noise(stats.name, "timing", -0.03, 0.03)

    net_ns = levels * _T_NET * congestion * spread * jitter
    logic_ns = levels * _T_LUT
    carry_ns = stats.max_chain_slices * _T_CARRY_PER_SLICE
    fanout_ns = _T_FANOUT * math.log10(max(1, stats.max_fanout))
    skew_ns = _T_REGION_CROSS if pblock.crosses_region_boundary() else 0.0
    return TimingReport(
        logic_ns=logic_ns,
        net_ns=net_ns,
        carry_ns=carry_ns,
        fanout_ns=fanout_ns,
        skew_ns=skew_ns,
    )
