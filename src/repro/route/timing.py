"""Longest-path estimation after intra-PBlock routing.

Delay model (7-series-flavoured constants):

* each LUT level costs a logic delay plus one net hop;
* net hops slow down super-linearly with slice utilization — the packer's
  congestion ceiling rejects unroutable placements, and this model makes
  the *routable but tight* region slower (Table I: CF 1.0 vs 1.5);
* the longest carry chain adds its propagation time;
* high-fanout nets add a distribution penalty;
* PBlocks spanning a clock-region boundary pay skew (paper §IV: compact
  PBlocks avoid clock distribution columns).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.netlist.stats import NetlistStats
from repro.place.packer import PackResult
from repro.pblock.pblock import PBlock
from repro.place_kernel.route_cost import (
    DEFAULT_NODE_DELAY_NS,
    NET_DELAY_NS,
    NS_PER_CLB,
    dag_longest_paths,
)
from repro.utils.rng import module_noise

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flow.blockdesign import BlockDesign
    from repro.place.shapes import Footprint
    from repro.place_kernel.result import StitchResult

__all__ = [
    "BlockTimingReport",
    "TimingReport",
    "block_critical_path",
    "longest_path",
]

_T_LUT = 0.124  # ns, LUT6 logic delay
_T_NET = 0.45  # ns, lightly-loaded net hop
_T_CARRY_PER_SLICE = 0.043  # ns per CARRY4 segment
_T_FANOUT = 0.35  # ns scale of the fanout penalty
_T_REGION_CROSS = 0.30  # ns clock-skew penalty
_CONGESTION_GAIN = 1.9  # net-delay inflation at full utilization


@dataclass(frozen=True)
class TimingReport:
    """Longest-path breakdown for one placed module (all values ns)."""

    logic_ns: float
    net_ns: float
    carry_ns: float
    fanout_ns: float
    skew_ns: float

    @property
    def total_ns(self) -> float:
        """The longest path."""
        return self.logic_ns + self.net_ns + self.carry_ns + self.fanout_ns + self.skew_ns


def longest_path(
    stats: NetlistStats, result: PackResult, pblock: PBlock
) -> TimingReport:
    """Estimate the longest path of a feasible placement.

    Raises
    ------
    ValueError
        If ``result`` is infeasible (there is no routed design to time).
    """
    if not result.feasible:
        raise ValueError(f"{stats.name}: cannot time an infeasible placement")

    levels = max(1, stats.logic_depth)
    util = result.utilization
    # Net delay grows quadratically once utilization passes ~50%.
    congestion = 1.0 + _CONGESTION_GAIN * max(0.0, util - 0.5) ** 2
    # Wires also lengthen with the physical extent of the region.
    span = math.sqrt(max(1, pblock.area_clbs))
    spread = 1.0 + 0.012 * span
    jitter = 1.0 + module_noise(stats.name, "timing", -0.03, 0.03)

    net_ns = levels * _T_NET * congestion * spread * jitter
    logic_ns = levels * _T_LUT
    carry_ns = stats.max_chain_slices * _T_CARRY_PER_SLICE
    fanout_ns = _T_FANOUT * math.log10(max(1, stats.max_fanout))
    skew_ns = _T_REGION_CROSS if pblock.crosses_region_boundary() else 0.0
    return TimingReport(
        logic_ns=logic_ns,
        net_ns=net_ns,
        carry_ns=carry_ns,
        fanout_ns=fanout_ns,
        skew_ns=skew_ns,
    )


@dataclass(frozen=True)
class BlockTimingReport:
    """Design-level critical path over the stitched block graph.

    The block graph's node delays are the per-module intra-block longest
    paths (:attr:`TimingReport.total_ns`); each inter-block net adds a
    nominal hop plus a distance-proportional share
    (:data:`~repro.place_kernel.route_cost.NS_PER_CLB` per CLB of
    Manhattan center distance) — the placement-dependent component the
    kernels' timing cost term optimizes.

    Attributes
    ----------
    critical_path_ns:
        Longest register-to-register path over the placed block graph.
    path:
        Instance names along the critical path, source to sink.
    n_cyclic_edges:
        Design edges on directed cycles, excluded from the longest-path
        analysis (the in-loop cost term instead treats them as maximally
        critical).
    n_unplaced_edges:
        Edges with an unplaced endpoint; they contribute the nominal hop
        delay but no distance share.
    """

    critical_path_ns: float
    path: tuple[str, ...]
    n_cyclic_edges: int
    n_unplaced_edges: int


def block_critical_path(
    design: "BlockDesign",
    footprints: Mapping[str, "Footprint"],
    stitch: "StitchResult",
    module_delays: Mapping[str, float] | None = None,
) -> BlockTimingReport:
    """Critical path of a stitched design with placement-aware net delays.

    ``module_delays`` maps module names to intra-block delays in ns (the
    flow seeds it from each pre-implemented module's
    :attr:`TimingReport.total_ns`); absent modules fall back to
    :data:`~repro.place_kernel.route_cost.DEFAULT_NODE_DELAY_NS`.
    Instances whose module has no footprint are treated as unplaced.
    """
    delays_of = module_delays or {}
    names = [i.name for i in design.instances]
    index = {n: k for k, n in enumerate(names)}
    node_delay = [
        float(delays_of.get(i.module, DEFAULT_NODE_DELAY_NS))
        for i in design.instances
    ]
    centers: dict[str, tuple[float, float]] = {}
    for inst in design.instances:
        pos = stitch.placements.get(inst.name)
        fp = footprints.get(inst.module)
        if pos is None or fp is None:
            continue
        fp = fp.trimmed()
        centers[inst.name] = (
            pos[0] + fp.width / 2.0,
            pos[1] + fp.max_height / 2.0,
        )

    edges = [(index[e.src], index[e.dst], e.width) for e in design.edges]
    edge_delay = []
    unplaced = 0
    for e in design.edges:
        a = centers.get(e.src)
        b = centers.get(e.dst)
        if a is None or b is None:
            unplaced += 1
            edge_delay.append(NET_DELAY_NS)
        else:
            dist = abs(a[0] - b[0]) + abs(a[1] - b[1])
            edge_delay.append(NET_DELAY_NS + NS_PER_CLB * dist)

    n = len(names)
    if n == 0:
        return BlockTimingReport(0.0, (), 0, 0)
    arrival, _leaving, pred, cyclic = dag_longest_paths(
        n, edges, node_delay, edge_delay
    )
    sink = max(range(n), key=lambda v: (arrival[v], -v))
    path = [names[sink]]
    v = sink
    while pred[v] != -1:
        v = edges[pred[v]][0]
        path.append(names[v])
    return BlockTimingReport(
        critical_path_ns=float(arrival[sink]),
        path=tuple(reversed(path)),
        n_cyclic_edges=sum(cyclic),
        n_unplaced_edges=unplaced,
    )
